"""The asyncio authentication server.

``PpufAuthServer`` glues the pieces together: a JSON-lines TCP listener
(:mod:`repro.service.wire`), the :class:`~repro.service.registry.DeviceRegistry`,
the :class:`~repro.service.sessions.SessionManager`, a bounded
verification pool, and :class:`~repro.service.stats.ServerStats`.

The verification pool matters because ``PpufVerifier.verify`` is the
O(n²/p) residual-graph check — microseconds on toy devices but the real
cost center at secure sizes.  Claims are therefore verified in a
``ProcessPoolExecutor`` (``workers > 0``) or the default thread executor
(``workers == 0``), never on the event loop, and a semaphore bounds how
many verifications may be in flight so a claim flood degrades into
backpressure instead of unbounded memory growth.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional

from repro.errors import ServiceError, VerificationError
from repro.flow.graph import DEFAULT_RTOL
from repro.ppuf.delay import lin_mead_delay_bound
from repro.ppuf.io import ppuf_from_dict
from repro.ppuf.verification import PpufVerifier
from repro.service import wire
from repro.service.registry import DeviceRegistry
from repro.service.sessions import ReplayRejected, Session, SessionManager
from repro.service.stats import ServerStats

#: Deadline slack relayed to clients as ``paper_deadline_seconds`` — the
#: modeled time bound of :class:`repro.ppuf.protocol.AuthenticationSession`.
PAPER_DEADLINE_SLACK = 100.0

# Process-local device cache for pool workers: rebuilding a PpufNetwork
# (and its capacity caches) per claim would swamp the verify itself.
_WORKER_DEVICES: Dict[str, object] = {}


def _verify_claim_task(
    device_id: str, public: dict, network: str, claim_wire: dict, rtol: float
) -> tuple:
    """Verify one wire claim; runs inside a pool worker (or thread).

    Returns ``(accepted, reason, verify_seconds)`` with ``reason`` one of
    ``"ok"``, ``"incorrect"`` (feasible but wrong), ``"infeasible"``
    (conservation/capacity violation or malformed paths).
    """
    import time

    device = _WORKER_DEVICES.get(device_id)
    if device is None:
        device = ppuf_from_dict(public)
        _WORKER_DEVICES[device_id] = device
    net = device.network_a if network == "a" else device.network_b
    verifier = PpufVerifier(net)
    claim = wire.claim_from_wire(claim_wire)
    start = time.perf_counter()
    try:
        accepted = verifier.verify_compact(claim, rtol=rtol)
        reason = "ok" if accepted else "incorrect"
    except (VerificationError, ServiceError):
        accepted, reason = False, "infeasible"
    return accepted, reason, time.perf_counter() - start


class VerificationPool:
    """Bounded off-loop executor for :func:`_verify_claim_task`."""

    def __init__(self, workers: int = 0, *, max_pending: Optional[int] = None):
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._executor = ProcessPoolExecutor(max_workers=workers) if workers else None
        self._semaphore = asyncio.Semaphore(max_pending or max(4, 2 * workers))

    async def verify(
        self, device_id: str, public: dict, network: str, claim_wire: dict, rtol: float
    ) -> tuple:
        async with self._semaphore:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor,
                _verify_claim_task,
                device_id,
                public,
                network,
                claim_wire,
                rtol,
            )

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)


class PpufAuthServer:
    """The networked verifier.

    Parameters
    ----------
    registry:
        Devices this verifier will challenge (may start empty when
        ``allow_enroll``).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port` after
        :meth:`start`).
    deadline_seconds, idle_timeout, rounds, seed:
        Session-manager knobs (see :class:`SessionManager`).
    workers:
        Verification processes; ``0`` verifies in the default thread
        executor (cheap devices / tests).
    rtol:
        Claim-value tolerance forwarded to ``PpufVerifier.verify``.
    allow_enroll:
        Accept ``enroll`` messages over the wire (disable for a
        pre-provisioned fleet).
    """

    def __init__(
        self,
        registry: Optional[DeviceRegistry] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        deadline_seconds: float = 5.0,
        idle_timeout: float = 60.0,
        rounds: int = 4,
        workers: int = 0,
        rtol: float = DEFAULT_RTOL,
        seed: Optional[int] = None,
        allow_enroll: bool = True,
    ):
        self.registry = registry if registry is not None else DeviceRegistry()
        self.host = host
        self.port = port
        self.rtol = rtol
        self.allow_enroll = allow_enroll
        self.sessions = SessionManager(
            deadline_seconds=deadline_seconds,
            idle_timeout=idle_timeout,
            rounds=rounds,
            seed=seed,
        )
        self.pool = VerificationPool(workers)
        self.stats = ServerStats()
        self._server: Optional[asyncio.base_events.Server] = None
        self._sweeper: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=wire.MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.create_task(self._sweep_idle_sessions())

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.shutdown()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "PpufAuthServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _sweep_idle_sessions(self) -> None:
        interval = max(self.sessions.idle_timeout / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            self.stats.sessions_expired += self.sessions.expire_idle()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    message = await wire.read_message(reader)
                except ServiceError as error:
                    self.stats.protocol_errors += 1
                    await wire.write_message(writer, {"type": wire.ERROR, "error": str(error)})
                    break
                if message is None:
                    break
                reply = await self._dispatch(message)
                await wire.write_message(writer, reply)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message: dict) -> dict:
        handlers = {
            wire.ENROLL: self._on_enroll,
            wire.HELLO: self._on_hello,
            wire.CLAIM: self._on_claim,
            wire.STATS: self._on_stats,
        }
        handler = handlers.get(message["type"])
        if handler is None:
            self.stats.protocol_errors += 1
            return {"type": wire.ERROR, "error": f"unknown message type {message['type']!r}"}
        try:
            return await handler(message)
        except ReplayRejected as error:
            # counted as replays_rejected by the claim handler, not as a
            # generic protocol error
            return {"type": wire.ERROR, "error": str(error)}
        except ServiceError as error:
            self.stats.protocol_errors += 1
            return {"type": wire.ERROR, "error": str(error)}

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    async def _on_enroll(self, message: dict) -> dict:
        if not self.allow_enroll:
            raise ServiceError("this server does not accept wire enrollment")
        public = message.get("device")
        if not isinstance(public, dict):
            raise ServiceError("enroll requires a 'device' object")
        device_id = self.registry.enroll(public)
        self.stats.enrollments += 1
        return {"type": wire.ENROLLED, "device_id": device_id}

    async def _on_hello(self, message: dict) -> dict:
        device_id = message.get("device_id")
        if not isinstance(device_id, str):
            raise ServiceError("hello requires a 'device_id' string")
        network = message.get("network", "a")
        if device_id not in self.registry:
            self.stats.unknown_devices += 1
            raise ServiceError(f"unknown device id {device_id!r}")
        device = self.registry.device(device_id)
        session = self.sessions.open(device_id, device, network, message.get("rounds"))
        self.stats.sessions_opened += 1
        self.stats.rounds_issued += 1
        return self._challenge_message(session, device)

    def _challenge_message(self, session: Session, device) -> dict:
        net = device.network_a if session.network == "a" else device.network_b
        paper_deadline = PAPER_DEADLINE_SLACK * lin_mead_delay_bound(
            device.n, net.tech, net.conditions
        )
        return {
            "type": wire.CHALLENGE,
            "session": session.session_id,
            "nonce": session.nonce,
            "round": session.round_index,
            "rounds": session.rounds_total,
            "challenge": wire.challenge_to_wire(session.challenge),
            "deadline_seconds": session.deadline_seconds,
            "paper_deadline_seconds": paper_deadline,
        }

    async def _on_claim(self, message: dict) -> dict:
        session_id = message.get("session")
        nonce = message.get("nonce")
        if not isinstance(session_id, str) or not isinstance(nonce, str):
            raise ServiceError("claim requires 'session' and 'nonce' strings")
        claim_wire = message.get("claim")
        if not isinstance(claim_wire, dict):
            raise ServiceError("claim requires a 'claim' object")
        try:
            session, elapsed = self.sessions.admit_claim(session_id, nonce)
        except ReplayRejected:
            self.stats.replays_rejected += 1
            raise

        if elapsed > session.deadline_seconds:
            self.stats.deadline_misses += 1
            return self._verdict(session, False, "deadline", elapsed)

        # The claim must answer the outstanding challenge, not one of the
        # prover's choosing.
        challenged = wire.challenge_to_wire(session.challenge)
        if claim_wire.get("challenge") != challenged:
            return self._verdict(session, False, "wrong_challenge", elapsed)

        device = self.registry.device(session.device_id)
        accepted, reason, verify_seconds = await self.pool.verify(
            session.device_id,
            self.registry.public(session.device_id),
            session.network,
            claim_wire,
            self.rtol,
        )
        # Claims name their solver; telemetry is per-algorithm (STATS verb).
        self.stats.observe_verify(claim_wire.get("algorithm"), verify_seconds)
        if not accepted:
            return self._verdict(session, False, reason, elapsed)
        if self.sessions.advance(session, device):
            self.stats.rounds_issued += 1
            return self._challenge_message(session, device)
        self.stats.sessions_accepted += 1
        return {
            "type": wire.VERDICT,
            "session": session.session_id,
            "accepted": True,
            "reason": "ok",
            "rounds_run": session.rounds_total,
        }

    def _verdict(self, session: Session, accepted: bool, reason: str, elapsed: float) -> dict:
        self.sessions.close(session)
        if not accepted:
            self.stats.sessions_rejected += 1
        return {
            "type": wire.VERDICT,
            "session": session.session_id,
            "accepted": accepted,
            "reason": reason,
            "rounds_run": session.round_index,
            "elapsed_seconds": elapsed,
        }

    async def _on_stats(self, message: dict) -> dict:
        snapshot = self.stats.snapshot()
        snapshot["active_sessions"] = len(self.sessions)
        snapshot["devices"] = len(self.registry)
        return {"type": wire.STATS, "stats": snapshot}
