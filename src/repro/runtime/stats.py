"""Runtime telemetry: what the worker pools did, exactly mergeable.

Every :class:`~repro.runtime.pool.WorkerPool` fills one
:class:`RuntimeStats`.  Like :class:`~repro.flow.registry.SolveStats` and
:class:`~repro.service.stats.ServerStats`, the record is *mergeable* with
an exact fold: counters sum, gauges take the max, so merging N pools'
stats (in any order, any grouping) equals what one observer watching all
N pools would have counted.  The service layer leans on this — a fleet
router folds per-shard ``runtime`` snapshots bucket-wise into one fleet
view — and the property suite (``tests/runtime/test_stats_merge.py``)
pins associativity and order-independence.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


#: Snapshot keys that merge by ``max`` (gauges); every other numeric key
#: merges by ``+`` (counters).
GAUGE_KEYS = frozenset({"queue_high_water"})


@dataclass
class RuntimeStats:
    """Counters for one worker pool's lifetime.

    Attributes
    ----------
    tasks_submitted / tasks_completed / tasks_failed:
        Tasks handed to the executor, tasks that returned a result, and
        tasks that raised (fault-contained exceptions count as failed
        even though the caller received a verdict).
    task_timeouts:
        Tasks cut off by the pool's per-task timeout
        (:class:`~repro.errors.ServiceTimeout` raised to the caller).
    worker_crashes:
        Tasks lost to a worker process dying (each failing task counts
        once — a single SIGKILL with three tasks in flight is three).
    pool_restarts:
        Times the pool replaced a broken executor with a fresh one.
    batches_dispatched:
        Micro-batches dispatched through a pool-backed batcher (filled
        by consumers that batch; stays 0 otherwise).
    queue_high_water:
        Most tasks ever simultaneously in flight (gauge; merges by max).
    """

    tasks_submitted: int = 0
    tasks_completed: int = 0
    tasks_failed: int = 0
    task_timeouts: int = 0
    worker_crashes: int = 0
    pool_restarts: int = 0
    batches_dispatched: int = 0
    queue_high_water: int = 0

    def merge(self, other: "RuntimeStats") -> "RuntimeStats":
        """Fold ``other`` in exactly (returns ``self``).

        Associative and order-independent: merging any permutation or
        grouping of the same records yields identical fields.
        """
        for entry in fields(self):
            ours = getattr(self, entry.name)
            theirs = getattr(other, entry.name)
            if entry.name in GAUGE_KEYS:
                setattr(self, entry.name, max(ours, theirs))
            else:
                setattr(self, entry.name, ours + theirs)
        return self

    def counters(self) -> dict:
        """Non-zero counter fields (no gauges) — the fold target for
        :class:`~repro.flow.registry.SolveStats.counters`."""
        return {
            entry.name: getattr(self, entry.name)
            for entry in fields(self)
            if entry.name not in GAUGE_KEYS and getattr(self, entry.name)
        }

    def snapshot(self) -> dict:
        """JSON-ready form (what a ``STATS`` wire reply carries)."""
        return {entry.name: getattr(self, entry.name) for entry in fields(self)}


def merge_runtime_snapshots(base: dict, other: dict) -> dict:
    """Merge two :meth:`RuntimeStats.snapshot` dicts (wire form).

    Mirrors :meth:`RuntimeStats.merge` on plain dicts so a fleet router
    can fold per-shard ``runtime`` entries without reconstructing
    objects: counters sum, :data:`GAUGE_KEYS` take the max, and keys one
    side lacks (snapshots from mixed versions) pass through unchanged.
    """
    merged = dict(base)
    for key, value in other.items():
        if key not in merged:
            merged[key] = value
        elif key in GAUGE_KEYS:
            merged[key] = max(merged[key], value)
        else:
            merged[key] = merged[key] + value
    return merged
