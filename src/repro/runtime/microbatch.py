"""Generic micro-batching: coalesce concurrent requests into one dispatch.

The pattern the auth server's claim batching proved out, lifted into the
runtime layer: requests that arrive while a batch is forming join it; the
batch is dispatched when it reaches ``batch_size`` or when the oldest
request has lingered ``linger_seconds`` — whichever comes first.  Under
load batches fill instantly and the linger never applies; a lone request
pays at most ``linger_seconds`` of extra latency in exchange for the
fleet win: B requests per dispatch instead of one.

:class:`MicroBatcher` is payload-agnostic — the dispatch callable decides
what a batch *means*.  The service's
:class:`~repro.service.server.ClaimMicroBatcher` dispatches claim batches
to the verification pool; :class:`CrpMicroBatcher` here dispatches
challenge batches to a :class:`~repro.ppuf.batch.BatchEvaluator`, so CRP
evaluation gets the same coalescing for free.

Failure semantics: a dispatch that raises fails every request in its
batch — :class:`~repro.errors.ServiceTimeout` and
:class:`~repro.errors.WorkerCrash` pass through typed (callers contain
them individually), anything else surfaces as
:class:`~repro.errors.ServiceError`.  One batch's failure never touches
the next batch.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Optional

from repro.errors import ServiceError, ServiceTimeout, WorkerCrash


class MicroBatcher:
    """Coalesces concurrent :meth:`submit` calls into list dispatches.

    Parameters
    ----------
    dispatch:
        ``async (items: list) -> list`` returning one result per item,
        in order.  A wrong-length return fails the whole batch (silent
        truncation would hand callers someone else's result).
    batch_size:
        Dispatch as soon as this many items are queued (must be >= 1).
    linger_seconds:
        How long [s] a forming batch waits for company before
        dispatching anyway (must be >= 0).
    on_dispatch:
        Optional ``(batch_length) -> None`` hook, called exactly once
        per dispatched batch — the telemetry seam.
    """

    def __init__(
        self,
        dispatch: Callable[[list], Awaitable[list]],
        *,
        batch_size: int = 16,
        linger_seconds: float = 0.002,
        on_dispatch: Optional[Callable[[int], None]] = None,
    ):
        if batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {batch_size}")
        if linger_seconds < 0:
            raise ServiceError(
                f"linger_seconds must be >= 0, got {linger_seconds}"
            )
        self.dispatch = dispatch
        self.batch_size = int(batch_size)
        self.linger_seconds = float(linger_seconds)
        self.on_dispatch = on_dispatch
        self._pending: list = []
        self._flusher: Optional[asyncio.Task] = None
        self._tasks: set = set()

    @property
    def busy(self) -> bool:
        """True while any item is queued or any batch is in flight."""
        return bool(self._pending or self._tasks)

    @property
    def queued(self) -> int:
        """Items waiting in the forming batch (not yet dispatched)."""
        return len(self._pending)

    def flush(self) -> None:
        """Dispatch whatever is queued now instead of waiting out the
        linger — used by graceful drain so a stopping consumer still
        settles requests that were coalescing when stop was called."""
        self._dispatch()

    async def submit(self, item):
        """Queue one item; resolves to its result once its batch returns."""
        future = asyncio.get_running_loop().create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.batch_size:
            self._dispatch()
        elif self._flusher is None:
            self._flusher = asyncio.create_task(self._linger())
        return await future

    async def _linger(self) -> None:
        try:
            await asyncio.sleep(self.linger_seconds)
        except asyncio.CancelledError:
            return
        self._dispatch()

    def _dispatch(self) -> None:
        batch, self._pending = self._pending, []
        flusher, self._flusher = self._flusher, None
        if flusher is not None and flusher is not asyncio.current_task():
            flusher.cancel()
        if batch:
            task = asyncio.create_task(self._run(batch))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run(self, batch: list) -> None:
        items = [item for item, _ in batch]
        if self.on_dispatch is not None:
            self.on_dispatch(len(items))
        try:
            results = await self.dispatch(items)
            if len(results) != len(items):
                raise ServiceError(
                    f"batch dispatch returned {len(results)} results "
                    f"for {len(items)} items"
                )
        except ServiceTimeout as error:
            self._fail(batch, lambda: ServiceTimeout(str(error)))
            return
        except WorkerCrash as error:
            # typed pass-through: callers contain a crashed worker per
            # request (crash-to-verdict), which a generic error can't.
            self._fail(batch, lambda: WorkerCrash(str(error)))
            return
        except Exception as error:  # noqa: BLE001 — fail the batch, not the loop
            self._fail(batch, lambda: ServiceError(str(error)))
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    @staticmethod
    def _fail(batch: list, make_error: Callable[[], Exception]) -> None:
        for _, future in batch:
            if not future.done():
                future.set_exception(make_error())


class CrpMicroBatcher(MicroBatcher):
    """Micro-batched CRP evaluation: single challenges in, bits out.

    Concurrent :meth:`response` calls coalesce into one
    :meth:`~repro.ppuf.batch.BatchEvaluator.evaluate` pass — the solver
    sees a ``(B, E)`` capacity table instead of B single-row solves, and
    because no arithmetic couples challenges the bit each caller gets is
    identical to evaluating its challenge alone.  The evaluation itself
    runs off-loop (it is CPU-bound numpy, not awaitable work).
    """

    def __init__(
        self,
        evaluator,
        *,
        batch_size: int = 64,
        linger_seconds: float = 0.002,
        on_dispatch: Optional[Callable[[int], None]] = None,
    ):
        super().__init__(
            self._evaluate,
            batch_size=batch_size,
            linger_seconds=linger_seconds,
            on_dispatch=on_dispatch,
        )
        self.evaluator = evaluator
        # An evaluator reuses its capacity/residual buffers across calls,
        # so two batches must never evaluate concurrently: batches queue
        # behind this lock (back-to-back, no coalescing lost).
        self._evaluate_lock = asyncio.Lock()

    async def _evaluate(self, challenges: list) -> list:
        loop = asyncio.get_running_loop()
        async with self._evaluate_lock:
            bits, _ = await loop.run_in_executor(
                None, self.evaluator.evaluate, list(challenges)
            )
        return [int(bit) for bit in bits]

    async def response(self, challenge) -> int:
        """One challenge's response bit, via the coalesced batch."""
        return await self.submit(challenge)
