"""The supervised worker pool every process fan-out in this repo rides.

One substrate instead of three: the batch CRP pipeline
(:class:`~repro.ppuf.batch.BatchEvaluator`), the auth server's
verification pool and the fleet load generator all used to hand-roll
their own ``ProcessPoolExecutor`` plumbing — submission, ordering,
timeouts, drain and crash handling each wired three times.
:class:`WorkerPool` centralises it:

* **backends** — ``workers >= 1`` runs tasks in a process pool (the
  verify/solve hot paths are CPU-bound); ``workers == 0`` runs them in a
  thread pool (cheap devices, tests, anything that must share the
  caller's memory).
* **bounded queues** — the sync :meth:`map` keeps a bounded window of
  futures in flight instead of submitting everything up front; the async
  :meth:`run` bounds admission with a semaphore.  A flood degrades into
  backpressure, never unbounded memory growth.
* **per-task timeouts** — a wedged task raises
  :class:`~repro.errors.ServiceTimeout` to its caller instead of holding
  a slot forever.
* **crash supervision** — a worker process dying (OOM kill, segfault,
  chaos test) breaks a ``ProcessPoolExecutor`` permanently; the pool
  replaces the broken executor with a fresh one and raises
  :class:`~repro.errors.WorkerCrash` for each task that was lost, so the
  *caller* decides the containment (the auth server turns it into a
  rejected verdict) and the *next* task runs on a healthy pool.
* **telemetry** — every submission, completion, failure, timeout, crash
  and restart lands in a mergeable :class:`~repro.runtime.stats.RuntimeStats`.

Thread-model note: a pool instance is driven either from one sync thread
(:meth:`map`) or from one event loop (:meth:`run`); the restart path is
locked because crashed futures can surface from either side.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Optional

from repro.errors import ServiceError, ServiceTimeout, WorkerCrash

from repro.runtime.stats import RuntimeStats


class WorkerPool:
    """Supervised, bounded executor with a sync and an async face.

    Parameters
    ----------
    workers:
        Process count; ``0`` selects the thread backend (tasks run in
        the calling process — the right mode for toy devices and for
        tests that monkeypatch task functions).
    initializer, initargs:
        Forwarded to the executor: run once per worker before any task
        (the batch pipeline uses this to attach the shared artifact).
    max_pending:
        Admission bound: how many tasks may be in flight at once
        (defaults to ``max(4, 2 * workers)``).
    task_timeout:
        Per-task wall-clock cutoff [s]; blown → :class:`ServiceTimeout`.
        ``None`` disables.
    task_name:
        Noun used in timeout messages (``"verification exceeded 5 s"``).
    """

    def __init__(
        self,
        workers: int,
        *,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        max_pending: Optional[int] = None,
        task_timeout: Optional[float] = None,
        task_name: str = "task",
    ):
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ServiceError(
                f"task timeout must be positive, got {task_timeout}"
            )
        if max_pending is not None and max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = int(workers)
        self.task_timeout = task_timeout
        self.task_name = task_name
        self.max_pending = max_pending or max(4, 2 * self.workers)
        self.stats = RuntimeStats()
        self.active = 0
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._restart_lock = threading.Lock()
        self._semaphore = asyncio.Semaphore(self.max_pending)
        self._executor = self._make_executor()

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------
    def _make_executor(self):
        if self.workers == 0:
            return ThreadPoolExecutor(
                initializer=self._initializer, initargs=self._initargs
            )
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def _crashed(self, error: BaseException) -> WorkerCrash:
        """Count one lost task, restart the executor if broken, and build
        the :class:`WorkerCrash` for the caller to raise.

        Identity-guarded: N tasks dying with one worker count N crashes
        but trigger at most one restart — ``ProcessPoolExecutor`` marks
        itself broken, and a freshly rebuilt executor is not.
        """
        self.stats.worker_crashes += 1
        with self._restart_lock:
            executor = self._executor
            if getattr(executor, "_broken", True):
                executor.shutdown(wait=False, cancel_futures=True)
                self._executor = self._make_executor()
                self.stats.pool_restarts += 1
        return WorkerCrash(f"worker process died mid-{self.task_name}: {error}")

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        self._executor.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def worker_pids(self) -> list:
        """PIDs of live pool processes (empty for the thread backend)."""
        processes = getattr(self._executor, "_processes", None)
        return sorted(processes) if processes else []

    # ------------------------------------------------------------------
    # sync face (batch pipeline, load generator)
    # ------------------------------------------------------------------
    def map(self, fn: Callable, iterable: Iterable) -> list:
        """Ordered results of ``fn`` over ``iterable``; bounded in flight.

        Unlike ``Executor.map`` this never enqueues the whole input: at
        most :attr:`max_pending` tasks are submitted ahead of the oldest
        unfinished one, so a million-chunk batch holds a window of
        futures, not a million.  Results come back in submission order
        regardless of completion order.
        """
        items = iter(iterable)
        window: deque = deque()
        results: list = []
        exhausted = False
        try:
            while True:
                while not exhausted and len(window) < self.max_pending:
                    try:
                        item = next(items)
                    except StopIteration:
                        exhausted = True
                        break
                    window.append(self._submit(fn, item))
                    self.stats.queue_high_water = max(
                        self.stats.queue_high_water, len(window)
                    )
                if not window:
                    return results
                results.append(self._result(window.popleft()))
        except BaseException:
            for future in window:
                future.cancel()
            raise

    def _submit(self, fn: Callable, *args):
        self.stats.tasks_submitted += 1
        try:
            return self._executor.submit(fn, *args)
        except BrokenProcessPool as error:
            raise self._crashed(error) from error

    def _result(self, future):
        try:
            result = future.result(self.task_timeout)
        except FuturesTimeout:
            self.stats.task_timeouts += 1
            raise ServiceTimeout(
                f"{self.task_name} exceeded {self.task_timeout:g} s"
            ) from None
        except BrokenProcessPool as error:
            raise self._crashed(error) from error
        except Exception:
            self.stats.tasks_failed += 1
            raise
        self.stats.tasks_completed += 1
        return result

    # ------------------------------------------------------------------
    # async face (auth server)
    # ------------------------------------------------------------------
    async def run(self, fn: Callable, *args):
        """Run one task off-loop; semaphore-bounded, timeout-cut.

        :attr:`active` counts tasks past admission — the drain gauge the
        server's graceful stop polls.
        """
        async with self._semaphore:
            loop = asyncio.get_running_loop()
            self.stats.tasks_submitted += 1
            self.active += 1
            self.stats.queue_high_water = max(
                self.stats.queue_high_water, self.active
            )
            try:
                try:
                    future = loop.run_in_executor(self._executor, fn, *args)
                except BrokenProcessPool as error:
                    raise self._crashed(error) from error
                try:
                    if self.task_timeout is None:
                        result = await future
                    else:
                        try:
                            result = await asyncio.wait_for(
                                future, timeout=self.task_timeout
                            )
                        except asyncio.TimeoutError:
                            self.stats.task_timeouts += 1
                            raise ServiceTimeout(
                                f"{self.task_name} exceeded "
                                f"{self.task_timeout:g} s"
                            ) from None
                except BrokenProcessPool as error:
                    raise self._crashed(error) from error
                except ServiceTimeout:
                    raise
                except Exception:
                    self.stats.tasks_failed += 1
                    raise
            finally:
                self.active -= 1
            self.stats.tasks_completed += 1
            return result

    async def drain(self, timeout: float) -> bool:
        """Wait up to ``timeout`` s for in-flight tasks to settle.

        Returns ``True`` when :attr:`active` reached zero in time —
        graceful-stop callers log (and proceed) on ``False`` rather than
        hang on a wedged task.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while self.active and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        return self.active == 0
