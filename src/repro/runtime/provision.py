"""Worker-side artifact provisioning: one cache, three transports.

A pool worker verifying claims or solving CRP chunks needs the device's
compiled tables.  Those tables can arrive three ways, each with its own
cost profile:

* **shared memory** — :func:`share_compiled` places one artifact's arrays
  in a single ``multiprocessing.shared_memory`` block; every worker
  *maps* it (:func:`attach_compiled`), zero copies, one small manifest
  pickle.  The batch pipeline's transport for its one hot device.
* **pack slice** — a ``("pack", path)`` reference; the worker maps the
  fleet's mmap'd :class:`~repro.ppuf.pack.ArtifactPack` once and every
  device after that is an index lookup + row slice.  The service's
  transport for pack-backed fleets.
* **fallback** — a pickled :class:`~repro.ppuf.compiled.CompiledDevice`
  (built from the registry's ``.npz`` artifacts) or, on the legacy path,
  the enrolled public dict rebuilt via
  :func:`repro.ppuf.io.ppuf_from_dict`.

All three land behind one process-local bounded LRU
(:func:`provision_device`): a worker holds at most
:data:`WORKER_DEVICE_CACHE_SIZE` materialised devices — a fleet of
millions must not be mirrored into every worker's memory — and the pack
mappings are shared per path, so the artifact bytes exist once per
machine (OS page cache), not once per worker.

This module is the **only** place in the repo allowed to touch
``multiprocessing.shared_memory`` (CI greps for it); the historical
import sites (``repro.ppuf.compiled``) re-export from here.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.errors import ReproError


def ppuf_from_dict(public):
    """Rebuild a device from its public description (legacy transport).

    Thin indirection over :func:`repro.ppuf.io.ppuf_from_dict`: imported
    lazily so this low-level runtime module never participates in the
    ``ppuf`` package's import graph (``repro.ppuf.compiled`` re-exports
    from here), and left at module scope so tests can monkeypatch the
    rebuild step.
    """
    from repro.ppuf import io

    return io.ppuf_from_dict(public)


#: Bound on the per-worker device cache.  Small on purpose: a pool worker
#: only needs the devices it is actively working on.  Read at insertion
#: time so tests (and operators) can retune a live process.
WORKER_DEVICE_CACHE_SIZE = 32

# Process-local LRU device cache for pool workers, keyed by device_id.
# The id is content-derived, so a stale entry is impossible — a changed
# description is a different id.
_WORKER_DEVICES: "OrderedDict[str, object]" = OrderedDict()

# Process-local pack mappings, keyed by path: map each fleet file exactly
# once per worker, slice per device.
_WORKER_PACKS: dict = {}

# Shared-memory segments attached by this process, kept referenced so the
# mappings outlive cache eviction of the devices viewing them (the numpy
# views pin the buffer; holding the handle too keeps teardown explicit).
_WORKER_SEGMENTS: list = []


def _pack_device(path: str, device_id: str):
    from repro.ppuf.pack import ArtifactPack

    pack = _WORKER_PACKS.get(path)
    if pack is None:
        pack = _WORKER_PACKS[path] = ArtifactPack(path)
    return pack.device(device_id)


def materialise_payload(payload, device_id: Optional[str] = None):
    """Turn one worker transport payload into a live device.

    Accepts every transport the pools ship: an enrolled public dict (the
    legacy path), a ``("pack", path)`` reference, a ``("shm", name,
    manifest)`` block published by :func:`share_compiled`, a
    ``("pickle", device)`` wrapper, or an already-materialised device
    object (returned as-is).
    """
    if isinstance(payload, dict):
        return ppuf_from_dict(payload)
    if isinstance(payload, tuple) and payload:
        kind = payload[0]
        if kind == "pack":
            if device_id is None:
                raise ReproError("a pack payload needs the device id")
            return _pack_device(payload[1], device_id)
        if kind == "shm":
            _, name, manifest = payload
            device, shm = attach_compiled(name, manifest)
            _WORKER_SEGMENTS.append(shm)
            return device
        if kind == "pickle":
            return payload[1]
        raise ReproError(f"unknown worker payload kind {kind!r}")
    return payload


def provision_device(device_id: str, payload):
    """Fetch-or-materialise a device, keeping at most the LRU bound.

    The single worker-side entry point the service's verify tasks call:
    whatever transport ``payload`` uses, the result is cached under its
    content-derived ``device_id`` and the least-recently-used entries are
    dropped past :data:`WORKER_DEVICE_CACHE_SIZE`.
    """
    device = _WORKER_DEVICES.get(device_id)
    if device is None:
        device = materialise_payload(payload, device_id)
        _WORKER_DEVICES[device_id] = device
        while len(_WORKER_DEVICES) > WORKER_DEVICE_CACHE_SIZE:
            _WORKER_DEVICES.popitem(last=False)
    else:
        _WORKER_DEVICES.move_to_end(device_id)
    return device


def cache_size() -> int:
    """Materialised devices currently held by this process's cache."""
    return len(_WORKER_DEVICES)


def clear_cache() -> None:
    """Drop every cached device, pack mapping and shm handle (tests)."""
    _WORKER_DEVICES.clear()
    _WORKER_PACKS.clear()
    _WORKER_SEGMENTS.clear()


# ----------------------------------------------------------------------
# producer side: shipping one artifact to a pool
# ----------------------------------------------------------------------
class ShippedArtifact:
    """One device readied for pool fan-out: payload + owned resources.

    ``payload`` is what the pool initializer receives (picklable);
    :meth:`close` releases whatever the producer still owns — the
    shared-memory block on the shm transport, nothing otherwise.  Always
    ``close()`` after the pool is done (the workers hold their own
    mappings; closing unlinks the producer's segment).
    """

    def __init__(self, payload, shm=None):
        self.payload = payload
        self._shm = shm

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None


def ship_compiled(device, *, share_memory: bool = True) -> ShippedArtifact:
    """Package a compiled device for a :class:`~repro.runtime.pool.WorkerPool`.

    With ``share_memory`` (default) the artifact's arrays go into one
    shared block and the payload is the tiny ``("shm", name, manifest)``
    reference; otherwise the payload pickles the device to every worker
    (the legacy baseline, kept for comparison benchmarks).
    """
    if share_memory:
        shm, manifest = share_compiled(device)
        return ShippedArtifact(("shm", shm.name, manifest), shm)
    return ShippedArtifact(("pickle", device))


# ----------------------------------------------------------------------
# shared-memory transport (multi-process fan-out)
# ----------------------------------------------------------------------
def share_compiled(device):
    """Copy an artifact's arrays into one shared-memory block.

    Returns ``(shm, manifest)``: the owning
    :class:`multiprocessing.shared_memory.SharedMemory` (caller must
    ``close()`` and ``unlink()`` it) and a small picklable manifest —
    header plus per-array layout — that :func:`attach_compiled` turns back
    into a :class:`~repro.ppuf.compiled.CompiledDevice` whose tables
    *map* the block (zero copies per worker).
    """
    from multiprocessing import shared_memory

    arrays = device.to_arrays()
    layout = []
    offset = 0
    for name, array in arrays.items():
        layout.append(
            {
                "name": name,
                "offset": offset,
                "shape": list(array.shape),
                "dtype": str(array.dtype),
            }
        )
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for entry, array in zip(layout, arrays.values()):
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=shm.buf,
                offset=entry["offset"],
            )
            np.copyto(view, array)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    manifest = {"header": device.header(), "arrays": layout}
    return shm, manifest


def attach_compiled(name: str, manifest: dict, *, untrack: bool = True):
    """Map a shared artifact published by :func:`share_compiled`.

    Returns ``(device, shm)``; the caller must keep ``shm`` referenced for
    the device's lifetime and ``close()`` it when done.  The attached
    arrays view the shared buffer directly — nothing is copied.

    ``untrack`` (default) detaches the mapping from this process's
    resource tracker so a worker's exit cannot unlink a segment the
    sharing process still owns; pass ``False`` when attaching from the
    owning process itself (its own registration must survive).
    """
    from multiprocessing import shared_memory

    from repro.ppuf.compiled import CompiledDevice

    try:
        shm = shared_memory.SharedMemory(name=name, track=untrack is False)
    except TypeError:  # Python < 3.13: no track flag
        if untrack:
            # Attaching would register the segment with the resource
            # tracker, which then unlinks it when a worker exits (and,
            # under fork, is *shared* with the owning process, so even an
            # unregister here would clobber the owner's bookkeeping).
            # Suppress the registration instead: ownership stays with the
            # sharing process, whose own registration is untouched.
            from multiprocessing import resource_tracker

            original = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        else:
            shm = shared_memory.SharedMemory(name=name)
    arrays = {
        entry["name"]: np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(entry["dtype"]),
            buffer=shm.buf,
            offset=entry["offset"],
        )
        for entry in manifest["arrays"]
    }
    return CompiledDevice.from_arrays(manifest["header"], arrays), shm
