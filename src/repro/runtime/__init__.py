"""``repro.runtime`` — the one execution substrate under every fan-out.

The repo's three process-parallel consumers — the batch CRP pipeline
(:class:`~repro.ppuf.batch.BatchEvaluator`), the auth service
(:class:`~repro.service.server.PpufAuthServer`) and the fleet load
generator (:func:`~repro.service.fleet.loadgen.generate_load`) — all run
on this layer instead of hand-rolling executors:

* :mod:`repro.runtime.pool` — :class:`WorkerPool`: supervised
  process/thread pool with bounded queues, per-task timeouts,
  crash-restart supervision and graceful drain.
* :mod:`repro.runtime.provision` — worker-side artifact provisioning:
  shared-memory blocks, mmap'd pack slices and ``.npz``/dict fallbacks
  behind one bounded LRU.  The only module allowed to touch
  ``multiprocessing.shared_memory``.
* :mod:`repro.runtime.microbatch` — :class:`MicroBatcher`: generic
  request coalescing (claims, CRPs) with typed failure pass-through.
* :mod:`repro.runtime.stats` — :class:`RuntimeStats`: exact, mergeable
  pool telemetry folded into ``SolveStats`` counters and ``STATS`` wire
  snapshots.
"""

from repro.runtime.microbatch import CrpMicroBatcher, MicroBatcher
from repro.runtime.pool import WorkerPool
from repro.runtime.provision import (
    ShippedArtifact,
    attach_compiled,
    materialise_payload,
    provision_device,
    share_compiled,
    ship_compiled,
)
from repro.runtime.stats import RuntimeStats, merge_runtime_snapshots

__all__ = [
    "CrpMicroBatcher",
    "MicroBatcher",
    "RuntimeStats",
    "ShippedArtifact",
    "WorkerPool",
    "attach_compiled",
    "materialise_payload",
    "merge_runtime_snapshots",
    "provision_device",
    "share_compiled",
    "ship_compiled",
]
