"""Command-line interface.

``python -m repro <command>``:

* ``create``     fabricate a PPUF and save its variation state to JSON
* ``compile``    precompile a saved PPUF into an evaluation artifact (npz)
* ``pack``       build/append/inspect packed artifact fleets (one mmap'd
  file for many devices; see :mod:`repro.ppuf.pack`)
* ``respond``    evaluate challenges on a saved PPUF (or ``--compiled``
  artifact)
* ``solvers``    list the registered max-flow solvers and capabilities
* ``protocol``   run a time-bounded authentication session against itself
* ``serve``      host the networked authentication service (see
  :mod:`repro.service`); ``--pack`` serves a packed fleet
* ``fleet``      scale it out: ``fleet serve`` runs N supervised shard
  servers behind one hash-sharding router, ``fleet stats`` merges
  fleet-wide telemetry, ``fleet load`` drives concurrent honest/hostile
  traffic (see :mod:`repro.service.fleet`)
* ``auth``       authenticate a saved PPUF (or ``--compiled`` artifact, or
  a ``--pack`` member) against a running server
* ``experiments``  regenerate the paper's tables/figures (see
  :mod:`repro.experiments.all`)

Every entry point that solves max-flow takes ``--algorithm`` with any name
from the solver registry (:mod:`repro.flow.registry`).  Every command
that fans work out across processes (``respond --workers``, ``serve
--workers``, ``fleet load --processes``) rides the one execution runtime
(:mod:`repro.runtime`): supervised pools, per-task timeouts, and crash
containment behave identically everywhere.

The save format captures everything that defines the silicon (topology,
technology card, operating point, both variation samples), so a saved PPUF
answers identically across processes — which the test suite asserts.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.errors import ReproError
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.ppuf import Ppuf


# ----------------------------------------------------------------------
# persistence (re-exported from repro.ppuf.io for backward compatibility)
# ----------------------------------------------------------------------
from repro.ppuf.io import (  # noqa: E402,F401
    load_compiled,
    load_crps,
    load_ppuf,
    ppuf_from_dict,
    ppuf_to_dict,
    save_compiled,
    save_crps,
    save_ppuf,
)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _command_create(arguments) -> int:
    rng = np.random.default_rng(arguments.seed)
    ppuf = Ppuf.create(arguments.nodes, arguments.grid, rng)
    save_ppuf(ppuf, arguments.output)
    print(
        f"created {arguments.nodes}-node PPUF (l={arguments.grid}, "
        f"seed={arguments.seed}) -> {arguments.output}"
    )
    return 0


def _command_compile(arguments) -> int:
    ppuf = load_ppuf(arguments.ppuf)
    compiled = ppuf.compile(include_circuit=not arguments.no_circuit)
    save_compiled(compiled, arguments.output)
    tables = "capacity+circuit" if compiled.has_circuit_tables else "capacity"
    print(
        f"compiled {arguments.ppuf} ({compiled.n} nodes, "
        f"{compiled.num_edges} edges, {tables} tables, "
        f"device {compiled.device_id[:16]}…) -> {arguments.output}"
    )
    return 0


def _pack_sources(arguments):
    """Yield compiled devices from the pack command's input flags (streaming)."""
    include_circuit = bool(getattr(arguments, "circuit", False))
    for path in arguments.ppuf:
        yield load_ppuf(path).compile(include_circuit=include_circuit)
    if arguments.registry:
        import os

        names = sorted(
            name
            for name in os.listdir(arguments.registry)
            if name.endswith(".json")
        )
        if not names:
            raise ReproError(
                f"registry directory {arguments.registry!r} holds no device JSON"
            )
        for name in names:
            ppuf = load_ppuf(os.path.join(arguments.registry, name))
            yield ppuf.compile(include_circuit=include_circuit)
    if arguments.create:
        rng = np.random.default_rng(arguments.seed)
        for _ in range(arguments.create):
            ppuf = Ppuf.create(arguments.nodes, arguments.grid, rng)
            yield ppuf.compile(include_circuit=include_circuit)


def _command_pack(arguments) -> int:
    from repro.ppuf.pack import ArtifactPack, append_pack, build_pack

    if arguments.pack_command == "inspect":
        pack = ArtifactPack(arguments.pack)
        if arguments.json:
            print(json.dumps({**pack.stats(), "ids": pack.ids()}, indent=2))
        else:
            stats = pack.stats()
            print(
                f"{stats['path']}: format {stats['format']}, "
                f"{stats['devices']} device(s), {stats['file_bytes']} bytes"
            )
            for device_id in pack.ids():
                header = pack.header(device_id)
                tables = "capacity+circuit" if header.get("circuit_tables") else "capacity"
                print(f"  {device_id[:16]}…  n={header['n']} l={header['l']} {tables}")
        return 0

    builder = build_pack if arguments.pack_command == "build" else append_pack
    if not (arguments.ppuf or arguments.registry or arguments.create):
        raise ReproError(
            "nothing to pack: pass --ppuf, --registry and/or --create"
        )
    count = builder(arguments.output, _pack_sources(arguments))
    verb = "packed" if arguments.pack_command == "build" else "appended"
    print(f"{verb} {count} device(s) -> {arguments.output}", file=sys.stderr)
    return 0


def _command_respond(arguments) -> int:
    from repro.ppuf import BatchEvaluator, CRP, CRPDataset

    if arguments.compiled:
        ppuf = load_compiled(arguments.compiled)
    else:
        ppuf = load_ppuf(arguments.ppuf)
    rng = np.random.default_rng(arguments.seed)
    if arguments.input:
        challenges = [crp.challenge for crp in load_crps(arguments.input)]
    else:
        space = ppuf.challenge_space()
        challenges = [space.random(rng) for _ in range(arguments.count)]

    if arguments.batch:
        evaluator = BatchEvaluator(
            ppuf,
            engine=arguments.engine,
            algorithm=arguments.algorithm or "batched_dinic",
            workers=arguments.workers,
        )
        bits, report = evaluator.evaluate(challenges)
        print(
            f"# evaluated {report.challenges} challenges in "
            f"{report.total_seconds:.3f} s ({report.throughput:.0f}/s; "
            f"engine={report.engine}, algorithm={report.algorithm}, "
            f"workers={report.workers}, chunks={report.chunks})",
            file=sys.stderr,
        )
        print(f"# solve stats: {json.dumps(report.stats.to_dict())}", file=sys.stderr)
    else:
        from repro.flow import SolveStats

        stats = SolveStats()
        algorithm = arguments.algorithm or DEFAULT_ALGORITHM
        bits = [
            ppuf.response(c, engine=arguments.engine, algorithm=algorithm, stats=stats)
            for c in challenges
        ]
        if stats.solves:
            print(f"# solve stats: {json.dumps(stats.to_dict())}", file=sys.stderr)

    dataset = CRPDataset(
        [CRP(challenge, int(bit)) for challenge, bit in zip(challenges, bits)]
    )
    if arguments.output:
        save_crps(dataset, arguments.output)
        print(f"wrote {len(dataset)} CRPs -> {arguments.output}", file=sys.stderr)
    else:
        for crp in dataset:
            print(json.dumps(crp.to_dict()))
    return 0


def _command_solvers(arguments) -> int:
    from repro.flow import registered_solvers

    specs = registered_solvers()
    if arguments.json:
        print(json.dumps([spec.capabilities() for spec in specs], indent=2))
        return 0
    rows = [
        ("name", "kind", "batch", "tensor", "recursion-free", "complexity",
         "description")
    ]
    for spec in specs:
        rows.append(
            (
                spec.name,
                spec.kind,
                "yes" if spec.supports_batch else "no",
                spec.tensor_kind,
                "yes" if spec.recursion_free else "no",
                spec.complexity,
                spec.description,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    if arguments.markdown:
        header, body = rows[0], rows[1:]
        print("| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |")
        print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in body:
            print("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    else:
        for row in rows:
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return 0


def _command_protocol(arguments) -> int:
    from repro.ppuf import AuthenticationSession, PpufProver, PpufVerifier

    ppuf = load_ppuf(arguments.ppuf)
    rng = np.random.default_rng(arguments.seed)
    session = AuthenticationSession(verifier=PpufVerifier(ppuf.network_a))
    result = session.run(
        PpufProver(ppuf.network_a),
        rng,
        rounds=arguments.rounds,
        algorithm=arguments.algorithm,
    )
    for index, record in enumerate(result.rounds):
        print(
            f"round {index}: value={record.claim_value:.6g} A "
            f"correct={record.claim_correct} "
            f"within_deadline={record.within_deadline} "
            f"algorithm={record.algorithm}"
        )
    print("ACCEPTED" if result.accepted else "REJECTED")
    return 0 if result.accepted else 1


def _install_stop_handlers(stop) -> None:
    """Route SIGTERM/SIGINT into ``stop()`` on the running loop.

    A supervisor drains a shard with SIGTERM; an operator drains a
    foreground server with Ctrl-C.  Both must end in ``server.stop()`` —
    which drains in-flight verifications — not in a KeyboardInterrupt
    traceback that tears the pool down mid-claim.
    """
    import asyncio
    import signal

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop)
        except (NotImplementedError, RuntimeError):  # non-Unix loops
            pass


def _emit_listening(port: int, **extra) -> None:
    """The machine-readable bind report: one JSON line on *stdout*.

    Harnesses (the fleet supervisor, CI scripts) read this instead of
    parsing the human banner on stderr.
    """
    print(json.dumps({"event": "listening", "port": port, **extra}), flush=True)


def _command_serve(arguments) -> int:
    import asyncio

    from repro.service import DeviceRegistry, PpufAuthServer

    registry = DeviceRegistry(arguments.registry, pack=arguments.pack)
    for path in arguments.enroll:
        device_id = registry.enroll_ppuf(load_ppuf(path))
        print(f"enrolled {path} as {device_id[:16]}…", file=sys.stderr)
    server = PpufAuthServer(
        registry,
        host=arguments.host,
        port=arguments.port,
        deadline_seconds=arguments.deadline,
        idle_timeout=arguments.idle_timeout,
        rounds=arguments.rounds,
        workers=arguments.workers,
        seed=arguments.seed,
        allow_enroll=not arguments.no_enroll,
        use_compiled=arguments.compiled,
        claim_batch_size=arguments.claim_batch,
        claim_batch_linger=arguments.claim_linger,
        connection_timeout=arguments.timeout if arguments.timeout > 0 else None,
        verify_timeout=(
            arguments.verify_timeout if arguments.verify_timeout > 0 else None
        ),
        max_connections=arguments.max_connections,
    )

    async def _serve() -> None:
        await server.start()
        stop_requested = asyncio.Event()
        _install_stop_handlers(stop_requested.set)
        _emit_listening(server.port, host=server.host, devices=len(registry))
        print(
            f"serving on {server.host}:{server.port} "
            f"({len(registry)} devices, {arguments.workers} verify workers)",
            file=sys.stderr,
        )
        serve_task = asyncio.create_task(server.serve_forever())
        stop_task = asyncio.create_task(stop_requested.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await server.stop()  # drains in-flight verifications
            print("server stopped", file=sys.stderr)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        # Signal handlers unavailable (rare loops): the legacy path.
        print("server stopped", file=sys.stderr)
    return 0


def _command_auth(arguments) -> int:
    from repro.service import (
        RetryPolicy,
        authenticate_device,
        enroll_device,
        fetch_stats,
    )

    retry = RetryPolicy(attempts=max(1, arguments.retries + 1))
    resilience = dict(timeout=arguments.timeout, retry=retry)
    if (arguments.compiled is not None) and (arguments.pack is not None):
        raise ReproError("--compiled and --pack are mutually exclusive")
    if arguments.compiled or arguments.pack:
        if arguments.enroll:
            raise ReproError(
                "--enroll needs the full public description; pass --ppuf "
                "(a compiled artifact carries only evaluation tables)"
            )
    if arguments.compiled:
        ppuf = load_compiled(arguments.compiled)
    elif arguments.pack:
        ppuf = _pack_member(arguments.pack, arguments.device_id)
    else:
        ppuf = load_ppuf(arguments.ppuf)
    if arguments.enroll:
        device_id = enroll_device(arguments.host, arguments.port, ppuf, **resilience)
        print(f"enrolled as {device_id[:16]}…", file=sys.stderr)
    outcome = authenticate_device(
        arguments.host,
        arguments.port,
        ppuf,
        network=arguments.network,
        rounds=arguments.rounds,
        algorithm=arguments.algorithm,
        **resilience,
    )
    for entry in outcome.transcript:
        print(
            f"round {entry['round']}: value={entry['value']:.6g} A "
            f"(deadline {entry['deadline_seconds']:g} s)"
        )
    print(f"{'ACCEPTED' if outcome.accepted else 'REJECTED'} ({outcome.reason})")
    if arguments.stats:
        print(
            json.dumps(
                fetch_stats(arguments.host, arguments.port, **resilience), indent=2
            )
        )
    return 0 if outcome.accepted else 1


def _pack_member(pack_path: str, device_id):
    """Resolve one device out of a pack (unique-prefix ids accepted)."""
    from repro.ppuf.pack import ArtifactPack

    pack = ArtifactPack(pack_path)
    ids = pack.ids()
    if device_id is None:
        if len(ids) == 1:
            return pack.device(ids[0])
        raise ReproError(
            f"pack {pack_path!r} holds {len(ids)} devices; pick one with "
            "--device-id (a unique id prefix is enough)"
        )
    matches = [known for known in ids if known.startswith(device_id)]
    if len(matches) != 1:
        raise ReproError(
            f"--device-id {device_id!r} matches {len(matches)} device(s) in "
            f"{pack_path!r}; need exactly one"
        )
    return pack.device(matches[0])


def _command_fleet(arguments) -> int:
    handlers = {
        "serve": _fleet_serve,
        "route": _fleet_route,
        "stats": _fleet_stats,
        "load": _fleet_load,
        "scale": _fleet_scale,
        "drain": _fleet_drain,
        "remove": _fleet_remove,
    }
    return handlers[arguments.fleet_command](arguments)


def _fleet_serve(arguments) -> int:
    import asyncio

    from repro.service.fleet import (
        FleetRouter,
        FleetSupervisor,
        ShardMap,
        ShardWorkerSpec,
    )

    spec = ShardWorkerSpec(
        pack=arguments.pack,
        registry=arguments.registry,
        workers=arguments.workers,
        rounds=arguments.rounds,
        deadline_seconds=arguments.deadline,
        idle_timeout=arguments.idle_timeout,
        connection_timeout=arguments.timeout,
        verify_timeout=arguments.verify_timeout,
        max_connections=arguments.max_connections,
        allow_enroll=not arguments.no_enroll,
        seed=arguments.seed,
        host=arguments.host,
    )

    async def _run() -> None:
        shard_map = ShardMap()
        supervisor = FleetSupervisor(
            arguments.shards,
            spec,
            shard_map=shard_map,
            map_file=arguments.map_file,
            probe_interval=arguments.probe_interval,
        )
        # The router shares the supervisor's map by reference (instant
        # in-process propagation) and, with --map-file, additionally
        # watches the file so its map_version telemetry matches any
        # external router routing from the same artifact.
        router = FleetRouter(
            shard_map,
            map_file=arguments.map_file,
            host=arguments.host,
            port=arguments.port,
        )
        await supervisor.start()
        try:
            await router.start()
            stop_requested = asyncio.Event()
            _install_stop_handlers(stop_requested.set)
            _emit_listening(
                router.port,
                host=router.host,
                role="router",
                map_file=arguments.map_file,
                shards=[shard.to_dict() for shard in shard_map.shards()],
            )
            print(
                f"fleet front door on {router.host}:{router.port} "
                f"({arguments.shards} shards: "
                + ", ".join(
                    f"{s.name}@{s.port}" for s in shard_map.shards()
                )
                + ")",
                file=sys.stderr,
            )
            await stop_requested.wait()
        finally:
            await router.stop()
            await supervisor.stop()
            print("fleet stopped", file=sys.stderr)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("fleet stopped", file=sys.stderr)
    return 0


def _fleet_route(arguments) -> int:
    """A standalone front door routing from a shared shard-map file.

    This is the multi-host story: run ``fleet serve --map-file`` on the
    host that owns the workers and any number of ``fleet route`` processes
    elsewhere — they all watch the same file and route identically.
    """
    import asyncio

    from repro.service.fleet import FleetRouter

    async def _run() -> None:
        router = FleetRouter(
            map_file=arguments.map_file,
            map_poll_interval=arguments.poll_interval,
            host=arguments.host,
            port=arguments.port,
        )
        await router.start()
        try:
            stop_requested = asyncio.Event()
            _install_stop_handlers(stop_requested.set)
            _emit_listening(
                router.port,
                host=router.host,
                role="router",
                map_file=arguments.map_file,
            )
            print(
                f"fleet router on {router.host}:{router.port} routing from "
                f"{arguments.map_file} (v{router.map_version})",
                file=sys.stderr,
            )
            await stop_requested.wait()
        finally:
            await router.stop()
            print("router stopped", file=sys.stderr)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("router stopped", file=sys.stderr)
    return 0


def _open_map_file(path: str):
    from repro.service.fleet import ShardMapFile

    map_file = ShardMapFile(path)
    if not map_file.exists():
        raise ReproError(
            f"no shard-map file at {path!r}; start the fleet with "
            "'repro fleet serve --map-file' first"
        )
    return map_file


def _print_map(shard_map, version: int, **extra) -> None:
    print(
        json.dumps(
            {
                "version": version,
                **extra,
                "shards": [shard.to_dict() for shard in shard_map.shards()],
            },
            indent=2,
        )
    )


def _fleet_scale(arguments) -> int:
    """Mutate a *live* fleet to N serving shards through the map file.

    Scaling up publishes placeholder descriptors (``port=0``, local host,
    state ``down``) that the watching supervisor turns into spawned
    workers; scaling down marks the highest-named shards ``draining`` and
    the supervisor settles, removes and terminates them.  Either way no
    process restarts and no pinned session drops.
    """
    from repro.service.fleet import DRAINING, DOWN, ShardDescriptor

    if arguments.shards < 1:
        raise ReproError(f"a fleet needs >= 1 shard, got {arguments.shards}")
    map_file = _open_map_file(arguments.map_file)
    added: list = []
    draining: list = []
    removed: list = []

    def _scale(shard_map) -> None:
        names = {shard.name for shard in shard_map.shards()}

        def serving():
            return [s for s in shard_map.shards() if s.state != DRAINING]

        while len(serving()) < arguments.shards:
            index = 0
            while f"shard-{index}" in names:
                index += 1
            name = f"shard-{index}"
            names.add(name)
            shard_map.add(
                ShardDescriptor(
                    name=name, host=arguments.host, port=0, state=DOWN
                )
            )
            added.append(name)
        while len(serving()) > arguments.shards:
            victim = serving()[-1]
            if victim.port == 0:
                # a spawn-request placeholder nobody bound yet — cancel
                # it outright, there is nothing to drain
                shard_map.remove(victim.name)
                removed.append(victim.name)
            else:
                shard_map.drain(victim.name)
                draining.append(victim.name)

    shard_map, version = map_file.mutate(_scale)
    _print_map(shard_map, version, added=added, draining=draining, removed=removed)
    return 0


def _fleet_drain(arguments) -> int:
    """Mark one shard draining; the supervisor settles and removes it."""
    map_file = _open_map_file(arguments.map_file)

    def _drain(shard_map) -> None:
        if arguments.name not in shard_map:
            raise ReproError(f"unknown shard {arguments.name!r}")
        shard_map.drain(arguments.name)

    shard_map, version = map_file.mutate(_drain)
    _print_map(shard_map, version, draining=[arguments.name])
    return 0


def _fleet_remove(arguments) -> int:
    """Delete one shard from the map *now* (no settle wait — cuts sessions)."""
    map_file = _open_map_file(arguments.map_file)

    def _remove(shard_map) -> None:
        if arguments.name not in shard_map:
            raise ReproError(f"unknown shard {arguments.name!r}")
        shard_map.remove(arguments.name)

    shard_map, version = map_file.mutate(_remove)
    _print_map(shard_map, version, removed=[arguments.name])
    return 0


def _fleet_stats(arguments) -> int:
    import asyncio

    from repro.service import ServiceClient, wire as service_wire

    async def _fetch() -> dict:
        async with ServiceClient(
            arguments.host, arguments.port, timeout=arguments.timeout
        ) as client:
            return await client.request_ok({"type": service_wire.STATS})

    reply = asyncio.run(_fetch())
    print(json.dumps({k: v for k, v in reply.items() if k != "type"}, indent=2))
    fleet = reply.get("fleet")
    if arguments.require_healthy:
        if not isinstance(fleet, dict):
            print("error: endpoint reports no fleet detail", file=sys.stderr)
            return 1
        shards = fleet.get("shards", [])
        unhealthy = [s["name"] for s in shards if not s.get("healthy")]
        if unhealthy or not shards:
            print(
                f"error: unhealthy shards: {', '.join(unhealthy) or '(none up)'}",
                file=sys.stderr,
            )
            return 1
    return 0


def _fleet_load(arguments) -> int:
    from repro.service.fleet import generate_load

    devices = None
    if arguments.ppuf:
        devices = [load_ppuf(path) for path in arguments.ppuf]
        if arguments.enroll:
            from repro.service import enroll_device

            for device in devices:
                enroll_device(arguments.host, arguments.port, device)
    elif not arguments.pack:
        raise ReproError("fleet load needs --pack or --ppuf")
    report = generate_load(
        arguments.host,
        arguments.port,
        devices=devices,
        pack=arguments.pack if devices is None else None,
        clients=arguments.clients,
        duration_seconds=arguments.duration,
        hostile_fraction=arguments.hostile_fraction,
        rounds=arguments.rounds,
        algorithm=arguments.algorithm,
        timeout=arguments.timeout,
        processes=arguments.processes,
    )
    print(json.dumps(report.to_dict(), indent=2))
    if report.sessions == 0:
        print("error: no session completed", file=sys.stderr)
        return 1
    if report.hostile_rejected != report.hostile_sessions:
        forged = report.hostile_sessions - report.hostile_rejected
        print(f"error: {forged} hostile session(s) were ACCEPTED", file=sys.stderr)
        return 1
    return 0


def _command_experiments(arguments) -> int:
    from repro.experiments.all import run_all

    run_all(
        quick=arguments.quick,
        extended=arguments.extended,
        algorithms=tuple(arguments.algorithm) if arguments.algorithm else None,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    create = commands.add_parser("create", help="fabricate and save a PPUF")
    create.add_argument("--nodes", type=int, default=20)
    create.add_argument("--grid", type=int, default=4)
    create.add_argument("--seed", type=int, default=0)
    create.add_argument("--output", default="ppuf.json")
    create.set_defaults(handler=_command_create)

    compile_cmd = commands.add_parser(
        "compile", help="precompile a saved PPUF into an evaluation artifact"
    )
    compile_cmd.add_argument("--ppuf", default="ppuf.json")
    compile_cmd.add_argument("--output", default="ppuf.npz")
    compile_cmd.add_argument(
        "--no-circuit",
        action="store_true",
        help="skip the circuit I-V tables (capacity-only artifact; enough "
        "for max-flow evaluation and claim verification)",
    )
    compile_cmd.set_defaults(handler=_command_compile)

    pack = commands.add_parser(
        "pack", help="build, append to, or inspect a packed artifact fleet"
    )
    pack_commands = pack.add_subparsers(dest="pack_command", required=True)

    def _pack_inputs(subparser):
        subparser.add_argument("--output", default="fleet.pack")
        subparser.add_argument(
            "--ppuf",
            action="append",
            default=[],
            metavar="PPUF_JSON",
            help="compile and pack a saved PPUF (repeatable)",
        )
        subparser.add_argument(
            "--registry",
            default=None,
            metavar="DIR",
            help="compile and pack every device JSON under a registry directory",
        )
        subparser.add_argument(
            "--create",
            type=int,
            default=0,
            metavar="COUNT",
            help="fabricate COUNT fresh devices straight into the pack",
        )
        subparser.add_argument("--nodes", type=int, default=20)
        subparser.add_argument("--grid", type=int, default=4)
        subparser.add_argument("--seed", type=int, default=0)
        subparser.add_argument(
            "--circuit",
            action="store_true",
            help="include circuit I-V tables (default: capacity-only rows)",
        )
        subparser.set_defaults(handler=_command_pack)

    _pack_inputs(pack_commands.add_parser("build", help="create a new pack"))
    _pack_inputs(
        pack_commands.add_parser(
            "append", help="append devices to an existing pack (never rewrites)"
        )
    )
    inspect = pack_commands.add_parser("inspect", help="summarise a pack")
    inspect.add_argument("pack", help="pack file to inspect")
    inspect.add_argument("--json", action="store_true", help="emit JSON")
    inspect.set_defaults(handler=_command_pack)

    respond = commands.add_parser("respond", help="evaluate random challenges")
    respond.add_argument("--ppuf", default="ppuf.json")
    respond.add_argument(
        "--compiled",
        default=None,
        metavar="NPZ",
        help="evaluate a compiled artifact (from `repro compile`) instead "
        "of --ppuf",
    )
    respond.add_argument("--count", type=int, default=5)
    respond.add_argument("--seed", type=int, default=0)
    respond.add_argument("--engine", choices=("maxflow", "circuit"), default="maxflow")
    respond.add_argument(
        "--batch",
        action="store_true",
        help="evaluate through the batched pipeline (repro.ppuf.batch)",
    )
    respond.add_argument(
        "--algorithm",
        default=None,
        help="registered solver name (default: 'batched' with --batch, "
        "'dinic' otherwise; see `repro solvers`)",
    )
    respond.add_argument(
        "--workers", type=int, default=1, help="process count for --batch"
    )
    respond.add_argument(
        "--input",
        default=None,
        help="CRP JSON file to take challenges from (responses recomputed)",
    )
    respond.add_argument(
        "--output", default=None, help="write results as CRP JSON to this file"
    )
    respond.set_defaults(handler=_command_respond)

    solvers = commands.add_parser(
        "solvers", help="list registered max-flow solvers and their capabilities"
    )
    solvers.add_argument(
        "--markdown", action="store_true", help="emit a Markdown table (docs)"
    )
    solvers.add_argument("--json", action="store_true", help="emit JSON capabilities")
    solvers.set_defaults(handler=_command_solvers)

    protocol = commands.add_parser("protocol", help="run an authentication session")
    protocol.add_argument("--ppuf", default="ppuf.json")
    protocol.add_argument("--rounds", type=int, default=4)
    protocol.add_argument("--seed", type=int, default=0)
    protocol.add_argument(
        "--algorithm",
        default=DEFAULT_ALGORITHM,
        help="exact solver the prover answers with",
    )
    protocol.set_defaults(handler=_command_protocol)

    serve = commands.add_parser("serve", help="host the authentication service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7341)
    serve.add_argument(
        "--registry", default=None, help="directory of enrolled devices (persistent)"
    )
    serve.add_argument(
        "--pack",
        default=None,
        metavar="PACK",
        help="serve a packed artifact fleet (from `repro pack build`); "
        "verification slices the pack's mmap instead of loading per-device "
        "files",
    )
    serve.add_argument(
        "--enroll",
        action="append",
        default=[],
        metavar="PPUF_JSON",
        help="enroll a saved PPUF at startup (repeatable)",
    )
    serve.add_argument(
        "--deadline", type=float, default=5.0, help="per-round response deadline [s]"
    )
    serve.add_argument("--idle-timeout", type=float, default=60.0)
    serve.add_argument("--rounds", type=int, default=4)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="verification processes (0 = in-thread verification)",
    )
    serve.add_argument("--seed", type=int, default=None, help="challenge-sampling seed")
    serve.add_argument(
        "--no-enroll", action="store_true", help="reject wire enrollment requests"
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-connection idle read timeout [s] (0 disables)",
    )
    serve.add_argument(
        "--verify-timeout",
        type=float,
        default=60.0,
        help="per-claim verification cutoff [s] (0 disables)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=256,
        help="concurrent connection cap (excess gets a wire error)",
    )
    serve.add_argument(
        "--compiled",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="ship compiled artifacts to verification workers "
        "(--no-compiled restores the legacy public-dict transport)",
    )
    serve.add_argument(
        "--claim-batch",
        type=int,
        default=16,
        help="micro-batching bound: coalesce up to this many concurrent "
        "claims into one lockstep verification (1 disables)",
    )
    serve.add_argument(
        "--claim-linger",
        type=float,
        default=0.002,
        help="max [s] a forming claim batch waits for company; bounds the "
        "latency a lone claim pays for micro-batching",
    )
    serve.set_defaults(handler=_command_serve)

    auth = commands.add_parser("auth", help="authenticate against a running server")
    auth.add_argument("--host", default="127.0.0.1")
    auth.add_argument("--port", type=int, default=7341)
    auth.add_argument("--ppuf", default="ppuf.json")
    auth.add_argument(
        "--compiled",
        default=None,
        metavar="NPZ",
        help="authenticate with a compiled artifact (from `repro compile`) "
        "instead of --ppuf",
    )
    auth.add_argument(
        "--pack",
        default=None,
        metavar="PACK",
        help="authenticate with a device from a packed fleet instead of "
        "--ppuf (pick one with --device-id)",
    )
    auth.add_argument(
        "--device-id",
        default=None,
        help="device to pull from --pack (a unique id prefix is enough; "
        "optional when the pack holds exactly one device)",
    )
    auth.add_argument("--network", choices=("a", "b"), default="a")
    auth.add_argument(
        "--rounds", type=int, default=None, help="request a round count (server caps)"
    )
    auth.add_argument(
        "--enroll", action="store_true", help="enroll the device before authenticating"
    )
    auth.add_argument(
        "--stats", action="store_true", help="print the server STATS snapshot afterwards"
    )
    auth.add_argument(
        "--algorithm",
        default=DEFAULT_ALGORITHM,
        help="exact solver the prover answers with",
    )
    auth.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-operation network timeout [s]",
    )
    auth.add_argument(
        "--retries",
        type=int,
        default=2,
        help="reconnect-and-retry count for idempotent verbs (claims are "
        "never retried)",
    )
    auth.set_defaults(handler=_command_auth)

    fleet = commands.add_parser(
        "fleet", help="run a hash-sharded authentication fleet"
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_serve = fleet_commands.add_parser(
        "serve",
        help="spawn N shard servers behind one front-door router",
    )
    fleet_serve.add_argument("--host", default="127.0.0.1")
    fleet_serve.add_argument(
        "--port", type=int, default=7342, help="router bind port (0 = ephemeral)"
    )
    fleet_serve.add_argument(
        "--shards", type=int, default=2, help="shard worker process count"
    )
    fleet_serve.add_argument(
        "--pack",
        default=None,
        metavar="PACK",
        help="packed artifact fleet every shard maps read-only",
    )
    fleet_serve.add_argument(
        "--registry", default=None, help="device registry directory (shared)"
    )
    fleet_serve.add_argument(
        "--workers", type=int, default=0, help="verification processes per shard"
    )
    fleet_serve.add_argument("--rounds", type=int, default=4)
    fleet_serve.add_argument("--deadline", type=float, default=5.0)
    fleet_serve.add_argument("--idle-timeout", type=float, default=60.0)
    fleet_serve.add_argument("--timeout", type=float, default=300.0)
    fleet_serve.add_argument("--verify-timeout", type=float, default=60.0)
    fleet_serve.add_argument("--max-connections", type=int, default=256)
    fleet_serve.add_argument("--seed", type=int, default=None)
    fleet_serve.add_argument("--no-enroll", action="store_true")
    fleet_serve.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        help="seconds between shard health probes",
    )
    fleet_serve.add_argument(
        "--map-file",
        default=None,
        metavar="PATH",
        help="publish and reconcile the shard map through this shared file "
        "(enables live 'fleet scale/drain/remove' and external "
        "'fleet route' front doors)",
    )
    fleet_serve.set_defaults(handler=_command_fleet)

    fleet_route = fleet_commands.add_parser(
        "route",
        help="run a standalone front-door router off a shared shard-map file",
    )
    fleet_route.add_argument("--host", default="127.0.0.1")
    fleet_route.add_argument(
        "--port", type=int, default=7343, help="router bind port (0 = ephemeral)"
    )
    fleet_route.add_argument(
        "--map-file", required=True, metavar="PATH", help="shard-map file to watch"
    )
    fleet_route.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="seconds between map-file polls (default 0.25)",
    )
    fleet_route.set_defaults(handler=_command_fleet)

    fleet_scale = fleet_commands.add_parser(
        "scale",
        help="grow or shrink a live fleet to N serving shards via the map file",
    )
    fleet_scale.add_argument(
        "--map-file", required=True, metavar="PATH", help="shard-map file to mutate"
    )
    fleet_scale.add_argument(
        "--shards", type=int, required=True, help="target serving shard count"
    )
    fleet_scale.add_argument(
        "--host",
        default="127.0.0.1",
        help="host new placeholder shards should spawn on (must match the "
        "supervisor's --host)",
    )
    fleet_scale.set_defaults(handler=_command_fleet)

    fleet_drain = fleet_commands.add_parser(
        "drain",
        help="gracefully decommission one shard (settle, then remove)",
    )
    fleet_drain.add_argument("name", help="shard name, e.g. shard-0")
    fleet_drain.add_argument(
        "--map-file", required=True, metavar="PATH", help="shard-map file to mutate"
    )
    fleet_drain.set_defaults(handler=_command_fleet)

    fleet_remove = fleet_commands.add_parser(
        "remove",
        help="force-remove one shard now (cuts its pinned sessions)",
    )
    fleet_remove.add_argument("name", help="shard name, e.g. shard-0")
    fleet_remove.add_argument(
        "--map-file", required=True, metavar="PATH", help="shard-map file to mutate"
    )
    fleet_remove.set_defaults(handler=_command_fleet)

    fleet_stats = fleet_commands.add_parser(
        "stats", help="merged fleet STATS snapshot from the router"
    )
    fleet_stats.add_argument("--host", default="127.0.0.1")
    fleet_stats.add_argument("--port", type=int, default=7342)
    fleet_stats.add_argument("--timeout", type=float, default=30.0)
    fleet_stats.add_argument(
        "--require-healthy",
        action="store_true",
        help="exit non-zero unless every shard answered its STATS probe",
    )
    fleet_stats.set_defaults(handler=_command_fleet)

    fleet_load = fleet_commands.add_parser(
        "load", help="drive concurrent honest/hostile load at an endpoint"
    )
    fleet_load.add_argument("--host", default="127.0.0.1")
    fleet_load.add_argument("--port", type=int, default=7342)
    fleet_load.add_argument("--clients", type=int, default=16)
    fleet_load.add_argument("--duration", type=float, default=5.0)
    fleet_load.add_argument(
        "--pack",
        default=None,
        metavar="PACK",
        help="drive the devices of a packed fleet (pre-provisioned)",
    )
    fleet_load.add_argument(
        "--ppuf",
        action="append",
        default=[],
        metavar="PPUF_JSON",
        help="drive saved PPUF devices (repeatable; see --enroll)",
    )
    fleet_load.add_argument(
        "--enroll",
        action="store_true",
        help="enroll --ppuf devices through the endpoint first",
    )
    fleet_load.add_argument(
        "--hostile-fraction",
        type=float,
        default=0.0,
        help="fraction of clients that forge claim values (must be rejected)",
    )
    fleet_load.add_argument("--rounds", type=int, default=1)
    fleet_load.add_argument("--algorithm", default=DEFAULT_ALGORITHM)
    fleet_load.add_argument("--timeout", type=float, default=30.0)
    fleet_load.add_argument(
        "--processes",
        type=int,
        default=1,
        help="loadgen worker processes (escape the prover's GIL bound)",
    )
    fleet_load.set_defaults(handler=_command_fleet)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument("--extended", action="store_true")
    experiments.add_argument(
        "--algorithm",
        action="append",
        default=None,
        metavar="NAME",
        help="solver(s) for the Fig. 7 timing sweep (repeatable; default: "
        "push_relabel + edmonds_karp)",
    )
    experiments.set_defaults(handler=_command_experiments)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
