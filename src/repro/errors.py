"""Exception hierarchy for the PPUF reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for malformed flow-network structure or invalid vertices."""


class FlowError(ReproError):
    """Raised when a flow assignment violates capacity or conservation."""


class SolverError(ReproError):
    """Raised when an algorithm fails to produce a valid result."""


class ConvergenceError(SolverError):
    """Raised when an iterative numeric solver fails to converge."""


class DeviceError(ReproError):
    """Raised for invalid device parameters or operating points."""


class ChallengeError(ReproError):
    """Raised for malformed PPUF challenges."""


class VerificationError(ReproError):
    """Raised when the residual-graph verification protocol fails."""


class AttackError(ReproError):
    """Raised for invalid model-building attack configurations."""


class ServiceError(ReproError):
    """Raised for networked-service failures (wire, registry, sessions)."""


class ServiceTimeout(ServiceError, TimeoutError):
    """Raised when a network operation exceeds its per-operation timeout.

    Also a :class:`TimeoutError`, so callers that only know stdlib timeout
    semantics (``except TimeoutError``) still catch it.
    """


class WorkerCrash(ServiceError):
    """Raised when a runtime pool worker process dies mid-task.

    The :class:`repro.runtime.pool.WorkerPool` restarts its executor
    before raising, so the *next* task submitted to the pool runs on a
    healthy worker; the task that was in flight when the worker died is
    unrecoverable and surfaces as this error.  Service callers contain it
    into a rejected verdict (crash-to-verdict) instead of letting it kill
    the connection.
    """


class ConnectionLost(ServiceError, ConnectionError):
    """Raised when the peer closes or resets the connection mid-operation.

    Also a :class:`ConnectionError`, mirroring :class:`ServiceTimeout`.
    """
