"""repro — reproduction of "Practical Public PUF Enabled by Solving
Max-Flow Problem on Chip" (Li, Miao, Zhong, Pan — DAC 2016).

Quick start
-----------

>>> import numpy as np
>>> from repro import Ppuf
>>> rng = np.random.default_rng(0)
>>> ppuf = Ppuf.create(n=20, l=4, rng=rng)
>>> challenge = ppuf.challenge_space().random(rng)
>>> ppuf.response(challenge) in (0, 1)
True

Subpackages
-----------
``repro.flow``       max-flow substrate (solvers, residual verification)
``repro.circuit``    SPICE-lite device models and DC solver
``repro.blocks``     PPUF building blocks (Fig. 2)
``repro.ppuf``       the PPUF device, ESG, feedback, verification protocol
``repro.analysis``   PUF metrics, environment corners, CRP-space counting
``repro.attacks``    model-building attacks (LS-SVM, RFF ridge, KNN)
``repro.baselines``  arbiter PUF baseline
``repro.experiments`` drivers regenerating every table/figure of the paper
"""

from repro.circuit.ptm32 import (
    NOMINAL_CONDITIONS,
    OperatingConditions,
    PTM32,
    Technology,
)
from repro.ppuf import (
    Challenge,
    ChallengeSpace,
    CurrentComparator,
    Ppuf,
    PpufProver,
    PpufVerifier,
    run_feedback_chain,
)

__version__ = "1.0.0"

__all__ = [
    "Ppuf",
    "Challenge",
    "ChallengeSpace",
    "CurrentComparator",
    "PpufProver",
    "PpufVerifier",
    "run_feedback_chain",
    "Technology",
    "OperatingConditions",
    "PTM32",
    "NOMINAL_CONDITIONS",
    "__version__",
]
