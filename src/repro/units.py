"""Physical constants and small unit helpers used throughout the library.

All internal computation is in SI base units (volts, amperes, ohms, farads,
seconds, kelvin).  The helpers here exist to make parameter declarations in
:mod:`repro.circuit.ptm32` and the experiment scripts self-documenting.
"""

from __future__ import annotations

# Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

# Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

# 0 degrees Celsius expressed in kelvin.
ZERO_CELSIUS = 273.15

# Nominal junction temperature used by the paper's SPICE runs [K].
ROOM_TEMPERATURE = ZERO_CELSIUS + 27.0


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE) -> float:
    """Return kT/q [V] at the given absolute temperature.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k} K")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


def celsius(value: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return value + ZERO_CELSIUS


# Prefix helpers: ``milli(35)`` reads better than ``35e-3`` in parameter
# tables transcribed from the paper.
def milli(value: float) -> float:
    """Scale by 1e-3."""
    return value * 1e-3


def micro(value: float) -> float:
    """Scale by 1e-6."""
    return value * 1e-6


def nano(value: float) -> float:
    """Scale by 1e-9."""
    return value * 1e-9


def pico(value: float) -> float:
    """Scale by 1e-12."""
    return value * 1e-12


def femto(value: float) -> float:
    """Scale by 1e-15."""
    return value * 1e-15
