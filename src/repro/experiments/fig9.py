"""Fig. 9: output flip probability vs challenge minimum distance.

Flipping d of the l² control bits of a random challenge should flip the
response bit with probability approaching the ideal 0.5 as d grows — the
paper's argument for restricting usable challenges to a minimum-distance-d
code.  Run on 40-node PPUFs with grid size l = 8, as in the paper (scaled
trial counts by default).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import flip_probability
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf


def run(
    *,
    n: int = 40,
    l: int = 8,
    distances=(1, 2, 4, 8, 12, 16),
    instances: int = 4,
    trials: int = 40,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    """Flip probability per minimum distance (paper: 100 PPUFs x 1000 vectors)."""
    rng = np.random.default_rng(seed)
    ppufs = [
        Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
        for _ in range(instances)
    ]
    table = ExperimentTable(
        title=f"Fig. 9: output flip probability vs minimum distance (n={n}, l={l})",
        columns=("distance", "flip_probability"),
    )
    for distance in distances:
        probabilities = [
            flip_probability(ppuf, distance, rng, trials=trials) for ppuf in ppufs
        ]
        table.add_row(
            distance=distance, flip_probability=float(np.mean(probabilities))
        )
    table.notes.append("paper: flip probability approaches 0.5 by d = 16")
    return table


def main():
    from repro.experiments.plotting import plot_table

    table = run()
    table.show()
    print(
        plot_table(
            table,
            "distance",
            ("flip_probability",),
            y_label="P(flip)",
        )
    )


if __name__ == "__main__":
    main()
