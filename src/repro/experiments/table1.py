"""Table 1: statistical PUF metrics.

Inter-class HD, intra-class HD (under ±10 % supply and −20…80 °C
temperature corners), uniformity and randomness for 40- and 100-node PPUFs.
Paper's measured means sit close to the ideals (0.5 / 0 / 0.5 / 0.5).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.environment import default_corners
from repro.analysis.metrics import (
    inter_class_hd,
    intra_class_hd,
    randomness,
    uniformity,
)
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf


def evaluate_population(
    n: int,
    l: int,
    *,
    instances: int,
    challenges: int,
    rng: np.random.Generator,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
    engine: str = "maxflow",
    corners=None,
):
    """Response matrices for a PPUF population.

    Returns ``(nominal, stressed)``: shapes (instances, challenges) and
    (corners, instances, challenges).
    """
    corners = corners if corners is not None else default_corners(include_cross=False)
    ppufs = [
        Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
        for _ in range(instances)
    ]
    space = ppufs[0].challenge_space()
    challenge_list = [space.random(rng) for _ in range(challenges)]

    nominal = np.stack(
        [ppuf.response_bits(challenge_list, engine=engine) for ppuf in ppufs]
    )
    stressed = np.stack(
        [
            np.stack(
                [
                    corner.apply(ppuf).response_bits(challenge_list, engine=engine)
                    for ppuf in ppufs
                ]
            )
            for corner in corners
        ]
    )
    return nominal, stressed


def run(
    *,
    sizes=((40, 8),),
    instances: int = 6,
    challenges: int = 40,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    """Produce the Table-1 metrics (paper sizes: 40- and 100-node PPUFs)."""
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Table 1: statistical evaluation",
        columns=("metric", "ideal", "nodes", "mean", "std"),
    )
    ideals = {
        "inter_class_hd": 0.5,
        "intra_class_hd": 0.0,
        "uniformity": 0.5,
        "randomness": 0.5,
    }
    for n, l in sizes:
        nominal, stressed = evaluate_population(
            n,
            l,
            instances=instances,
            challenges=challenges,
            rng=rng,
            tech=tech,
            conditions=conditions,
        )
        summaries = [
            inter_class_hd(nominal),
            intra_class_hd(nominal, stressed),
            uniformity(nominal),
            randomness(nominal),
        ]
        for summary in summaries:
            table.add_row(
                metric=summary.name,
                ideal=ideals[summary.name],
                nodes=n,
                mean=summary.mean,
                std=summary.std,
            )
    table.notes.append(
        "paper (40-node): inter 0.5009/0.1371, intra 0.0673/0.1104, "
        "uniformity 0.4946/0.208, randomness 0.4946/0.0277"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
