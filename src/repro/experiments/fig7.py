"""Fig. 7: execution vs simulation scaling and the ESG.

(a) Wall-clock simulation time of the classical solvers (by default
push-relabel and augmenting path, as in the paper's Boost benchmark — any
registered solver name works) against the modeled O(n) execution delay,
with power-law fits.
(b) The ESG as a function of node count, with and without the feedback-loop
technique (k = n), and the node counts where the gap reaches 1 second.

Absolute simulation constants are machine- and language-dependent (the
paper used C++ on a 2.93 GHz Xeon; this is pure Python), so ``run`` also
reports a *calibrated* crossover where the measured exponent is re-anchored
through the paper's (100 nodes, 400 µs) Fig. 7a point.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.flow import get_solver, random_complete_network, time_solver
from repro.ppuf.delay import lin_mead_delay_bound
from repro.ppuf.esg import ESGModel, PowerLawFit, fit_power_law

#: Fig. 7a anchor on the paper's axis: ~400 us simulation time at 100 nodes.
PAPER_SIM_ANCHOR = (100.0, 400e-6)

#: The paper's Boost pair: FIFO push-relabel and shortest augmenting path.
DEFAULT_ALGORITHMS = ("push_relabel", "edmonds_karp")


def run(
    *,
    sizes=(10, 20, 30, 40, 60, 80),
    repeats: int = 2,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
    esg_target: float = 1.0,
    algorithms=None,
):
    """Measure solver scaling, fit laws, and locate the ESG crossovers.

    ``algorithms`` names the registered solvers to sweep (resolved through
    :mod:`repro.flow.registry`); each contributes one ``<name>_s`` column.
    """
    rng = np.random.default_rng(seed)
    if algorithms is None:
        algorithms = DEFAULT_ALGORITHMS
    specs = [get_solver(name) for name in algorithms]

    def make_instance(n: int):
        return random_complete_network(n, rng, mean=1.0, relative_sigma=0.3)

    table_a = ExperimentTable(
        title="Fig. 7a: simulation vs execution time scaling",
        columns=("nodes",)
        + tuple(f"{spec.name}_s" for spec in specs)
        + ("execution_delay_s",),
    )
    samples = {
        spec.name: time_solver(spec, make_instance, sizes, repeats=repeats)
        for spec in specs
    }
    exe_times = [lin_mead_delay_bound(n, tech, conditions) for n in sizes]
    for index, (n, exe) in enumerate(zip(sizes, exe_times)):
        row = {f"{spec.name}_s": samples[spec.name][index].mean_seconds for spec in specs}
        table_a.add_row(nodes=n, execution_delay_s=exe, **row)

    # Exponent from machine-independent operation counts (Python wall time
    # is still interpreter-overhead-dominated at these sizes); coefficient
    # anchored to the wall time measured at the largest size.  Augmenting
    # path is the paper's reference simulator when present.
    fit_name = "edmonds_karp" if "edmonds_karp" in samples else specs[0].name
    fit_samples = samples[fit_name]
    ops_fit = fit_power_law(sizes, [s.mean_operations for s in fit_samples])
    sim_fit = PowerLawFit(
        coefficient=fit_samples[-1].mean_seconds / sizes[-1] ** ops_fit.exponent,
        exponent=ops_fit.exponent,
    )
    exe_fit = fit_power_law(sizes, exe_times)
    table_a.notes.append(
        f"fits: T_sim ~ {sim_fit.coefficient:.3g} * n^{sim_fit.exponent:.2f} "
        f"(exponent from {fit_name} operation counts, anchored to wall "
        f"time), T_exe ~ {exe_fit.coefficient:.3g} * n^{exe_fit.exponent:.2f} "
        "(paper: >= O(n^2) vs O(n))"
    )

    model = ESGModel(simulation=sim_fit, execution=exe_fit)
    feedback_model = model.with_feedback(lambda n: n)
    calibrated_sim = sim_fit.scaled_to(*PAPER_SIM_ANCHOR)
    calibrated = ESGModel(simulation=calibrated_sim, execution=exe_fit)
    calibrated_feedback = calibrated.with_feedback(lambda n: n)

    table_b = ExperimentTable(
        title="Fig. 7b: ESG crossover node counts (gap = 1 s)",
        columns=("variant", "crossover_nodes", "paper_nodes"),
    )
    table_b.add_row(
        variant="measured, no feedback",
        crossover_nodes=model.crossover_nodes(esg_target),
        paper_nodes="-",
    )
    table_b.add_row(
        variant="measured, feedback k=n",
        crossover_nodes=feedback_model.crossover_nodes(esg_target),
        paper_nodes="-",
    )
    table_b.add_row(
        variant="calibrated to paper axis, no feedback",
        crossover_nodes=calibrated.crossover_nodes(esg_target),
        paper_nodes=900,
    )
    table_b.add_row(
        variant="calibrated to paper axis, feedback k=n",
        crossover_nodes=calibrated_feedback.crossover_nodes(esg_target),
        paper_nodes=190,
    )
    table_b.notes.append(
        "calibration re-anchors the measured exponent through the paper's "
        "(100 nodes, 400 us) simulation-time point"
    )
    return table_a, table_b


def main():
    from repro.experiments.plotting import plot_table

    table_a, table_b = run()
    table_a.show()
    print(
        plot_table(
            table_a,
            "nodes",
            tuple(c for c in table_a.columns if c != "nodes"),
            log_x=True,
            log_y=True,
            y_label="seconds",
        )
    )
    print()
    table_b.show()


if __name__ == "__main__":
    main()
