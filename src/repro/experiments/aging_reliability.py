"""Aging reliability: response drift over operating lifetime.

Extension beyond the paper's voltage/temperature corners: BTI-style Vt
drift with device-to-device dispersion, applied to both networks of a
population of PPUFs.  Reported as the lifetime analogue of intra-class HD.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aging import AgingModel, aging_study
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf


def run(
    *,
    n: int = 16,
    l: int = 4,
    instances: int = 4,
    challenges: int = 30,
    years=(0.0, 1.0, 3.0, 10.0),
    model: AgingModel = AgingModel(),
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    rng = np.random.default_rng(seed)
    drift_matrix = []
    for _ in range(instances):
        ppuf = Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
        _, drift = aging_study(
            ppuf, years, rng, model=model, challenges=challenges
        )
        drift_matrix.append(drift)
    drift_matrix = np.asarray(drift_matrix)

    table = ExperimentTable(
        title=f"Aging reliability: response drift vs lifetime (n={n}, l={l})",
        columns=("years", "mean_drift", "max_drift"),
    )
    for index, age in enumerate(years):
        table.add_row(
            years=float(age),
            mean_drift=float(drift_matrix[:, index].mean()),
            max_drift=float(drift_matrix[:, index].max()),
        )
    table.notes.append(
        "BTI-style drift with dispersion; the differential architecture "
        "cancels the mean shift, so drift stays well below the 0.5 of an "
        "unrelated device"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
