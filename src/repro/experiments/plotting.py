"""Terminal (ASCII) plotting for experiment series.

The benchmark harness prints tables; for the scaling figures (7, 8, 9, 10)
a picture says more.  :func:`ascii_plot` renders multiple named series on
one character grid with optional log axes — enough to eyeball a power law
or a crossover without leaving the terminal.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.errors import ReproError

#: Glyphs assigned to series in registration order.
SERIES_GLYPHS = "ox+*#@%&"


def _transform(values, log: bool):
    out = []
    for value in values:
        if log:
            if value <= 0:
                raise ReproError("log axis requires positive values")
            out.append(math.log10(value))
        else:
            out.append(float(value))
    return out


def ascii_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named series against a shared x axis as an ASCII grid.

    Returns the multi-line plot string (legend included).  Series may have
    unequal lengths only if they all match ``len(x)``.
    """
    if width < 16 or height < 6:
        raise ReproError("plot needs width >= 16 and height >= 6")
    if not series:
        raise ReproError("need at least one series")
    if len(series) > len(SERIES_GLYPHS):
        raise ReproError(f"at most {len(SERIES_GLYPHS)} series supported")
    x = list(x)
    if len(x) < 2:
        raise ReproError("need at least two x samples")
    for name, values in series.items():
        if len(values) != len(x):
            raise ReproError(
                f"series {name!r} has {len(values)} points but x has {len(x)}"
            )

    tx = _transform(x, log_x)
    ty_all = [_transform(values, log_y) for values in series.values()]
    x_min, x_max = min(tx), max(tx)
    y_min = min(min(ty) for ty in ty_all)
    y_max = max(max(ty) for ty in ty_all)
    if x_max == x_min:
        raise ReproError("x axis is degenerate")
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(value_x: float, value_y: float, glyph: str) -> None:
        column = round((value_x - x_min) / (x_max - x_min) * (width - 1))
        row = round((value_y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][column] = glyph

    for glyph, ty in zip(SERIES_GLYPHS, ty_all):
        for value_x, value_y in zip(tx, ty):
            place(value_x, value_y, glyph)

    def fmt(value: float, log: bool) -> str:
        return f"1e{value:.1f}" if log else f"{value:.3g}"

    lines = []
    top_label = fmt(y_max, log_y)
    bottom_label = fmt(y_min, log_y)
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines.append(f"{y_label.rjust(margin)}")
    for index, row in enumerate(grid):
        prefix = top_label if index == 0 else (
            bottom_label if index == height - 1 else ""
        )
        lines.append(f"{prefix.rjust(margin)}|{''.join(row)}")
    axis = f"{'':>{margin}}+" + "-" * width
    lines.append(axis)
    left = fmt(x_min, log_x)
    right = fmt(x_max, log_x)
    gap = width - len(left) - len(right)
    lines.append(f"{'':>{margin}} {left}{' ' * max(gap, 1)}{right}  ({x_label})")
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(SERIES_GLYPHS, series)
    )
    lines.append(f"{'':>{margin}} {legend}")
    return "\n".join(lines)


def plot_table(
    table,
    x_column: str,
    y_columns: Sequence[str],
    **kwargs,
) -> str:
    """Plot columns of an :class:`~repro.experiments.base.ExperimentTable`."""
    x = table.column(x_column)
    series = {name: table.column(name) for name in y_columns}
    kwargs.setdefault("x_label", x_column)
    return ascii_plot(x, series, **kwargs)
