"""Fig. 10: model-building attack resilience.

Prediction error of the best attacker (LS-SVM with RBF/linear kernels, KNN
with K = 1, 3, ..., 21) against the number of observed CRPs, for 40- and
100-node PPUFs and an arbiter PUF of the same input length.  The paper
reports the PPUF holding more than an order of magnitude higher prediction
error than the arbiter PUF.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import attack_curve, build_attack_dataset, build_ppuf_attack_dataset
from repro.baselines import ArbiterPuf
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf


def run(
    *,
    ppuf_sizes=((40, 8),),
    train_sizes=(100, 300, 1000),
    test_count: int = 500,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    """Attack curves for PPUFs and the arbiter baseline.

    The paper's full run uses 40- and 100-node PPUFs up to 10^4 CRPs; pass
    ``ppuf_sizes=((40, 8), (100, 16))`` and
    ``train_sizes=(100, 1000, 10000)`` to match.
    """
    rng = np.random.default_rng(seed)
    max_train = max(train_sizes)
    table = ExperimentTable(
        title="Fig. 10: prediction error vs observed CRPs",
        columns=("target", "num_crps", "svm_error", "knn_error", "best_error"),
    )

    for n, l in ppuf_sizes:
        ppuf = Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
        dataset = build_ppuf_attack_dataset(ppuf, max_train, test_count, rng)
        for point in attack_curve(dataset, train_sizes):
            table.add_row(
                target=f"ppuf_{n}n",
                num_crps=point.num_crps,
                svm_error=point.svm_error,
                knn_error=point.knn_error,
                best_error=point.best_error,
            )

    # Arbiter with the same input length as the first PPUF's control word.
    stages = ppuf_sizes[0][1] ** 2
    arbiter = ArbiterPuf(stages, rng)
    arbiter_dataset = build_attack_dataset(
        arbiter.respond,
        stages,
        max_train,
        test_count,
        rng,
        feature_map=ArbiterPuf.parity_features,
    )
    for point in attack_curve(arbiter_dataset, train_sizes):
        table.add_row(
            target="arbiter",
            num_crps=point.num_crps,
            svm_error=point.svm_error,
            knn_error=point.knn_error,
            best_error=point.best_error,
        )

    table.notes.append(
        "paper: PPUF prediction error stays > 10x the arbiter PUF's at "
        "matching CRP counts"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
