"""Delay-model validation: three estimators of the execution time.

The paper's O(n) claim rests on the Lin–Mead bound; this experiment
cross-checks it against two physics-based measurements on the same solved
networks:

* the **transient settling time** — a full nonlinear backward-Euler
  simulation of the V(s) turn-on, timed until the source current enters a
  1 % band (the quantity the paper's SPICE runs measure);
* the **linearised worst mode** — the slowest RC eigenmode around the DC
  operating point (a conservative full-voltage-settling figure).

Expected ordering: transient ≤ Lin–Mead bound ≤ linearised mode, all
growing with n.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf
from repro.ppuf.delay import (
    lin_mead_delay_bound,
    measured_settling_time,
    transient_settling_time,
)


def run(
    *,
    sizes=(8, 12, 16, 24),
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    """Compare the three delay estimators across node counts."""
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Delay-model validation: transient vs Lin-Mead vs linearised",
        columns=(
            "nodes",
            "transient_s",
            "lin_mead_bound_s",
            "linearized_mode_s",
        ),
    )
    for n in sizes:
        l = max(2, n // 4)
        ppuf = Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
        bits = np.ones(ppuf.crossbar.num_edges, dtype=np.uint8)
        table.add_row(
            nodes=n,
            transient_s=transient_settling_time(ppuf.network_a, bits, 0, n - 1),
            lin_mead_bound_s=lin_mead_delay_bound(n, tech, conditions),
            linearized_mode_s=measured_settling_time(ppuf.network_a, bits, 0, n - 1),
        )
    table.notes.append(
        "the Lin-Mead bound upper-bounds the measured current settling and "
        "grows O(n); the linearised figure bounds full voltage settling"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
