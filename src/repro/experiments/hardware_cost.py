"""Hardware-cost study: the grid partition's control-signal reduction.

Section 4.2: "the number of individual control signals increases
quadratically relative to the node number, which leads to high cost for
large design" — hence one capacitor-stored bias per l×l grid cell.  This
experiment tabulates the naive vs partitioned control-signal counts and
the device/area inventory across design points, including the paper's
headline n = 200, l = 15 configuration and the Fig. 7(b) crossover sizes.
"""

from __future__ import annotations

from repro.analysis.cost import hardware_budget
from repro.experiments.base import ExperimentTable


def run(*, design_points=((40, 8), (100, 16), (200, 15), (900, 30))):
    table = ExperimentTable(
        title="Hardware cost vs design point (Section 4.2)",
        columns=(
            "nodes",
            "grid_l",
            "edge_blocks",
            "mosfets",
            "naive_controls",
            "partitioned_controls",
            "reduction",
            "area_mm2",
        ),
    )
    for n, l in design_points:
        budget = hardware_budget(n, l)
        table.add_row(
            nodes=n,
            grid_l=l,
            edge_blocks=budget.edge_blocks,
            mosfets=budget.mosfets,
            naive_controls=budget.naive_control_signals,
            partitioned_controls=budget.control_signals,
            reduction=budget.control_reduction,
            area_mm2=budget.area_m2 * 1e6,
        )
    table.notes.append(
        "naive = one signal per block (quadratic); partitioned = l^2 grid "
        "biases + terminal-select lines"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
