"""Fig. 6: accuracy of the max-flow simulation model.

For PPUFs of increasing node count, compare the executed source current
(nonlinear circuit solve) against the simulated one (max-flow with
saturation-current capacities):

    inaccuracy = |I_max,exe - I_max,sim| / I_max,exe.

The paper runs 100 trials per size and reports average inaccuracy < 1 %,
against a ~9 % instance-to-instance variation of the current itself — the
margin that makes simulated responses trustworthy.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf
from repro.ppuf.engines import network_current


def run(
    *,
    sizes=(10, 20, 30, 40),
    trials: int = 10,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    """Measure simulation-model inaccuracy per node count.

    ``trials`` counts (instance, challenge) samples per size; the paper uses
    100 with sizes up to 100 nodes — pass those for the full run.
    """
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Fig. 6: simulation-model inaccuracy vs node count",
        columns=(
            "nodes",
            "trials",
            "mean_inaccuracy",
            "max_inaccuracy",
            "current_rel_std",
        ),
    )
    for n in sizes:
        l = max(2, n // 5)
        errors = []
        currents = []
        for _ in range(trials):
            ppuf = Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
            challenge = ppuf.challenge_space().random(rng)
            executed = network_current(ppuf.network_a, challenge, "circuit")
            simulated = network_current(ppuf.network_a, challenge, "maxflow")
            errors.append(abs(executed - simulated) / executed)
            currents.append(simulated)
        currents = np.asarray(currents)
        table.add_row(
            nodes=n,
            trials=trials,
            mean_inaccuracy=float(np.mean(errors)),
            max_inaccuracy=float(np.max(errors)),
            current_rel_std=float(currents.std(ddof=1) / currents.mean()),
        )
    table.notes.append(
        "paper: average inaccuracy < 1 % while the max-current variation is "
        "~9.27 % for a 100-node PPUF"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
