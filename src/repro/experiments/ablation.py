"""Ablation studies called out in DESIGN.md §6 (beyond the paper's figures).

* **placement** — Section 4.1's side-by-side layout vs separate placement:
  with independent systematic fields, each instance's differential margin
  acquires a die-level bias, skewing per-instance uniformity.
* **comparator noise** — response error rate vs input-referred noise and
  majority-vote count (the practical reliability knob of Fig. 8's
  measurability story).
* **solver choice** — the maxflow engine must return identical responses
  for every algorithm.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.circuit.ptm32 import PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import CurrentComparator, Ppuf
from repro.flow.registry import DEFAULT_ALGORITHM
from repro.ppuf.engines import network_current


def placement_ablation(
    *,
    n: int = 16,
    l: int = 4,
    instances: int = 10,
    challenges: int = 20,
    systematic_sigma: float = 0.12,
    seed: int = 2016,
) -> ExperimentTable:
    """Uniformity spread with vs without side-by-side placement.

    Uses an exaggerated systematic sigma so the effect is visible at
    laptop-scale instance counts.
    """
    tech = dataclasses.replace(PTM32, sigma_vt_systematic=systematic_sigma)
    table = ExperimentTable(
        title="Placement ablation: per-instance uniformity spread",
        columns=("layout", "uniformity_mean", "uniformity_std"),
    )
    for side_by_side in (True, False):
        rng = np.random.default_rng(seed)
        uniformities = []
        for _ in range(instances):
            ppuf = Ppuf.create(n, l, rng, tech=tech, side_by_side=side_by_side)
            space = ppuf.challenge_space()
            challenge_list = [space.random(rng) for _ in range(challenges)]
            uniformities.append(float(ppuf.response_bits(challenge_list).mean()))
        uniformities = np.asarray(uniformities)
        table.add_row(
            layout="side_by_side" if side_by_side else "separate",
            uniformity_mean=float(uniformities.mean()),
            uniformity_std=float(uniformities.std(ddof=1)),
        )
    table.notes.append(
        "separate placement lets die-level gradients bias one network, "
        "pushing per-instance uniformity away from 0.5"
    )
    return table


def comparator_noise_ablation(
    *,
    n: int = 16,
    l: int = 4,
    challenges: int = 30,
    noise_sigmas=(0.0, 5e-9, 2e-8),
    votes=(1, 7),
    seed: int = 2016,
) -> ExperimentTable:
    """Noisy-response error rate vs noise level and majority votes."""
    rng = np.random.default_rng(seed)
    ppuf = Ppuf.create(n, l, rng)
    space = ppuf.challenge_space()
    challenge_list = [space.random(rng) for _ in range(challenges)]
    reference = ppuf.response_bits(challenge_list)

    table = ExperimentTable(
        title="Comparator-noise ablation: response error rate",
        columns=("noise_sigma_A", "votes", "error_rate"),
    )
    for sigma in noise_sigmas:
        noisy = Ppuf(
            crossbar=ppuf.crossbar,
            network_a=ppuf.network_a,
            network_b=ppuf.network_b,
            comparator=CurrentComparator(noise_sigma=sigma),
        )
        for vote_count in votes:
            errors = 0
            for challenge, expected in zip(challenge_list, reference):
                bit = noisy.noisy_response(challenge, rng, votes=vote_count)
                errors += bit != expected
            table.add_row(
                noise_sigma_A=sigma,
                votes=vote_count,
                error_rate=errors / len(challenge_list),
            )
    table.notes.append("majority voting suppresses noise-induced flips")
    return table


def solver_consistency_ablation(
    *,
    n: int = 14,
    l: int = 3,
    challenges: int = 10,
    seed: int = 2016,
) -> ExperimentTable:
    """Responses must not depend on the max-flow algorithm."""
    rng = np.random.default_rng(seed)
    ppuf = Ppuf.create(n, l, rng)
    space = ppuf.challenge_space()
    challenge_list = [space.random(rng) for _ in range(challenges)]
    table = ExperimentTable(
        title="Solver-consistency ablation",
        columns=("algorithm", "agreement_with_dinic"),
    )
    reference = [
        network_current(ppuf.network_a, c, "maxflow", algorithm=DEFAULT_ALGORITHM)
        for c in challenge_list
    ]
    for algorithm in (
        "edmonds_karp",
        "push_relabel",
        "capacity_scaling",
        "highest_label",
    ):
        values = [
            network_current(ppuf.network_a, c, "maxflow", algorithm=algorithm)
            for c in challenge_list
        ]
        agree = np.allclose(values, reference, rtol=1e-9)
        table.add_row(algorithm=algorithm, agreement_with_dinic=bool(agree))
    return table


def run(**kwargs):
    """All three ablations (keyword arguments forwarded to each)."""
    return (
        placement_ablation(),
        comparator_noise_ablation(),
        solver_consistency_ablation(),
    )


def main():
    for table in run():
        table.show()


if __name__ == "__main__":
    main()
