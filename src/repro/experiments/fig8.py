"""Fig. 8 and the power budget: output measurability.

Average network current and |current difference| between the two networks
as the PPUF scales, with linear fits extrapolated to the 900-node design —
these set the comparator's input-range and resolution requirements.  The
Section-5 power/energy estimate rides on the same fits.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import fit_linear
from repro.analysis.power import estimate_power
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.ppuf import Ppuf
from repro.ppuf.delay import lin_mead_delay_bound


def run(
    *,
    sizes=(10, 20, 30, 40, 60),
    instances: int = 4,
    challenges: int = 4,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
    design_nodes: int = 900,
):
    """Measure current statistics per size, fit, and extrapolate."""
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Fig. 8: output current average and difference vs node count",
        columns=("nodes", "avg_current_A", "avg_difference_A"),
    )
    for n in sizes:
        l = max(2, n // 5)
        averages = []
        differences = []
        for _ in range(instances):
            ppuf = Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
            space = ppuf.challenge_space()
            for _ in range(challenges):
                challenge = space.random(rng)
                current_a, current_b = ppuf.currents(challenge, engine="maxflow")
                averages.append(0.5 * (current_a + current_b))
                differences.append(abs(current_a - current_b))
        table.add_row(
            nodes=n,
            avg_current_A=float(np.mean(averages)),
            avg_difference_A=float(np.mean(differences)),
        )

    sizes_measured = table.column("nodes")
    avg_fit = fit_linear(sizes_measured, table.column("avg_current_A"))
    # The difference of two sums of n-1 independent edges grows ~ sqrt(n);
    # fit against sqrt(n) as the paper's sub-linear "current diff" curve.
    sqrt_sizes = np.sqrt(np.asarray(sizes_measured, dtype=np.float64))
    diff_fit = fit_linear(sqrt_sizes, table.column("avg_difference_A"))

    projected_avg = float(avg_fit(design_nodes))
    projected_diff = float(diff_fit(np.sqrt(design_nodes)))
    delay = lin_mead_delay_bound(design_nodes, tech, conditions)
    power = estimate_power(projected_avg, conditions.v_supply, delay)

    summary = ExperimentTable(
        title=f"Fig. 8 extrapolation and power budget at {design_nodes} nodes",
        columns=("quantity", "value", "paper_value"),
    )
    summary.add_row(quantity="avg current [A]", value=projected_avg, paper_value=33.6e-6)
    summary.add_row(
        quantity="current difference [A]", value=projected_diff, paper_value=2.89e-6
    )
    summary.add_row(
        quantity="crossbar power [W]", value=power.crossbar_power, paper_value=134.4e-6
    )
    summary.add_row(
        quantity="comparator power [W]",
        value=power.comparator_power,
        paper_value=153e-6,
    )
    summary.add_row(quantity="execution delay [s]", value=delay, paper_value=1.0e-6)
    summary.add_row(
        quantity="energy per evaluation [J]",
        value=power.energy_per_evaluation,
        paper_value=287.4e-12,
    )
    summary.notes.append(
        f"linear avg-current fit R^2 = {avg_fit.r_squared:.4f}; "
        f"difference fitted against sqrt(n), R^2 = {diff_fit.r_squared:.4f}"
    )
    return table, summary


def main():
    for table in run():
        table.show()


if __name__ == "__main__":
    main()
