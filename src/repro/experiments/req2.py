"""Requirement 2: process variation must dominate SCE inaccuracy.

Monte-Carlo reproduction of the paper's sufficiency check for the two-level
SD block (paper: variation amplitude ~130x the SCE-induced current change),
plus the SD-level ablation quantifying why two levels are needed.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.montecarlo import requirement2_ratio, sd_level_drift
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable


def run(*, samples: int = 2000, seed: int = 2016, tech=PTM32, conditions=NOMINAL_CONDITIONS):
    rng = np.random.default_rng(seed)
    result = requirement2_ratio(rng, samples=samples, tech=tech, conditions=conditions)
    table = ExperimentTable(
        title="Requirement 2: variation amplitude vs SCE drift (2-level SD)",
        columns=("quantity", "value"),
    )
    table.add_row(quantity="variation amplitude [A]", value=result.variation_amplitude)
    table.add_row(quantity="SCE current change [A]", value=result.sce_change)
    table.add_row(quantity="ratio", value=result.ratio)
    table.add_row(quantity="samples", value=result.samples)
    table.notes.append("paper: ratio ~ 130x for the two-level SD block")

    ablation = ExperimentTable(
        title="SD-level ablation: relative saturation drift per design",
        columns=("design", "relative_drift"),
    )
    for name, drift in sd_level_drift(tech=tech, conditions=conditions).items():
        ablation.add_row(design=name, relative_drift=drift)
    return table, ablation


def main():
    for table in run():
        table.show()


if __name__ == "__main__":
    main()
