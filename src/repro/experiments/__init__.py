"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning :class:`~repro.experiments.base.
ExperimentTable` objects (plain data — the benchmark harness and the test
suite consume them) and a ``main()`` that prints the same rows/series the
paper reports.  Default parameters are scaled to run on a laptop; pass the
paper's full sizes explicitly when patience permits.
"""

from repro.experiments.base import ExperimentTable

__all__ = ["ExperimentTable"]
