"""CRP-space size (Section 4.2's N_CRP bound).

The paper's worked example: n = 200 nodes, l = 15, d = 2l = 30 gives
N_CRP >= 6.53x10^35 — large enough to rule out exhaustive enumeration.
"""

from __future__ import annotations

from repro.analysis.codes import codebook_size_lower_bound, crp_space_lower_bound
from repro.experiments.base import ExperimentTable


def run(*, configurations=((200, 15, 30), (100, 16, 32), (40, 8, 16))):
    table = ExperimentTable(
        title="Section 4.2: CRP-space lower bounds",
        columns=("nodes", "grid_l", "min_distance", "type_b_bound", "n_crp_bound"),
    )
    for n, l, d in configurations:
        table.add_row(
            nodes=n,
            grid_l=l,
            min_distance=d,
            type_b_bound=float(codebook_size_lower_bound(l * l, d)),
            n_crp_bound=float(crp_space_lower_bound(n, l, d)),
        )
    table.notes.append("paper example: n=200, l=15, d=30 -> N_CRP >= 6.53e35")
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
