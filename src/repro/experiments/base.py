"""Shared result container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ReproError


@dataclass
class ExperimentTable:
    """A titled table of results.

    Rows are dictionaries keyed by column name; formatting is applied only
    at print time so tests can assert on the raw values.
    """

    title: str
    columns: Sequence[str]
    rows: List[Dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ReproError(f"row missing columns: {sorted(missing)}")
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> List:
        if name not in self.columns:
            raise ReproError(f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def to_text(self, *, float_format: str = "{:.4g}") -> str:
        """Render as a fixed-width text table."""
        def fmt(value):
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.to_text())
        print()
