"""Run every experiment driver in sequence: the one-shot reproduction.

``python -m repro.experiments.all [--quick]`` prints every table/figure of
the paper.  ``--quick`` trims sample counts to smoke-test scale (~1 min);
the default is the benchmark-suite scale (several minutes).
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ablation,
    aging_reliability,
    crpspace,
    delay_models,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hardware_cost,
    req2,
    table1,
)


def _show_all(tables):
    if not isinstance(tables, tuple):
        tables = (tables,)
    for table in tables:
        table.show()


#: Extension studies beyond the paper's figures (run with --extended).
EXTENDED_PLANS = (
    ("Ablations", ablation.run),
    ("Delay models", delay_models.run),
    ("Hardware cost", hardware_cost.run),
    ("Aging", aging_reliability.run),
)


def run_all(*, quick: bool = False, extended: bool = False, algorithms=None) -> None:
    """Execute every driver and print its tables.

    ``algorithms`` (registered solver names) is forwarded to the Fig. 7
    timing sweep; ``None`` keeps the paper's push-relabel/augmenting-path
    pair.
    """
    if quick:
        plans = [
            ("Fig. 3", lambda: fig3.run(points=21)),
            ("Req. 2", lambda: req2.run(samples=400)),
            ("Fig. 6", lambda: fig6.run(sizes=(10, 20), trials=3)),
            (
                "Fig. 7",
                lambda: fig7.run(sizes=(10, 20, 30, 40), repeats=1, algorithms=algorithms),
            ),
            ("Fig. 8", lambda: fig8.run(sizes=(10, 20, 30), instances=2, challenges=2)),
            ("Table 1", lambda: table1.run(sizes=((24, 6),), instances=4, challenges=20)),
            ("Fig. 9", lambda: fig9.run(n=24, l=6, distances=(1, 4, 16), instances=2, trials=20)),
            ("Fig. 10", lambda: fig10.run(ppuf_sizes=((24, 6),), train_sizes=(100, 400), test_count=200)),
            ("N_CRP", crpspace.run),
        ]
    else:
        plans = [
            ("Fig. 3", fig3.run),
            ("Req. 2", req2.run),
            ("Fig. 6", fig6.run),
            ("Fig. 7", lambda: fig7.run(algorithms=algorithms)),
            ("Fig. 8", fig8.run),
            ("Table 1", lambda: table1.run(sizes=((40, 8),))),
            ("Fig. 9", lambda: fig9.run(n=40, l=8)),
            ("Fig. 10", lambda: fig10.run(ppuf_sizes=((40, 8),))),
            ("N_CRP", crpspace.run),
        ]
    if extended:
        plans = list(plans) + list(EXTENDED_PLANS)
    total_start = time.perf_counter()
    for name, plan in plans:
        start = time.perf_counter()
        tables = plan()
        elapsed = time.perf_counter() - start
        print(f"==== {name} ({elapsed:.1f}s) " + "=" * 40)
        _show_all(tables)
    print(f"total: {time.perf_counter() - total_start:.1f}s")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smoke-test scale (~1 minute)"
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="also run the extension studies (ablations, delay models, "
        "hardware cost, aging)",
    )
    parser.add_argument(
        "--algorithm",
        action="append",
        default=None,
        metavar="NAME",
        help="solver(s) for the Fig. 7 sweep (repeatable)",
    )
    arguments = parser.parse_args(argv)
    run_all(
        quick=arguments.quick,
        extended=arguments.extended,
        algorithms=tuple(arguments.algorithm) if arguments.algorithm else None,
    )


if __name__ == "__main__":
    main()
