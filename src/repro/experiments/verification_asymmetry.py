"""Verification asymmetry (Section 2): solving is hard, checking is cheap.

Measures, per node count, the prover's max-flow solve time against the
verifier's residual-BFS check time on the same PPUF instances, next to the
analytic cost ratio (O(n³ log n / p) simulation vs O(n²/p) verification).
The growing measured ratio is what lets a weak verifier time-bound a
powerful prover.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable
from repro.flow.parallel import parallel_time_lower_bound, verification_time_bound
from repro.ppuf import Ppuf, PpufProver, PpufVerifier


def run(
    *,
    sizes=(10, 20, 40, 60),
    repeats: int = 3,
    seed: int = 2016,
    tech=PTM32,
    conditions=NOMINAL_CONDITIONS,
):
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Section 2: prover-solve vs verifier-check asymmetry",
        columns=(
            "nodes",
            "prover_solve_s",
            "verifier_check_s",
            "measured_ratio",
            "analytic_ratio",
        ),
    )
    for n in sizes:
        l = max(2, n // 5)
        ppuf = Ppuf.create(n, l, rng, tech=tech, conditions=conditions)
        prover = PpufProver(ppuf.network_a)
        verifier = PpufVerifier(ppuf.network_a)
        solve_times = []
        check_times = []
        for _ in range(repeats):
            challenge = ppuf.challenge_space().random(rng)
            claim = prover.answer(challenge)
            solve_times.append(claim.elapsed_seconds)
            accepted, check_seconds = verifier.timed_verify(claim)
            assert accepted
            check_times.append(check_seconds)
        solve = float(np.median(solve_times))
        check = float(np.median(check_times))
        table.add_row(
            nodes=n,
            prover_solve_s=solve,
            verifier_check_s=check,
            measured_ratio=solve / check,
            analytic_ratio=parallel_time_lower_bound(n, n)
            / verification_time_bound(n, n),
        )
    table.notes.append(
        "analytic ratio = (n^3 log n / p) / (n^2 / p) = n log n with p = n"
    )
    return table


def main():
    run().show()


if __name__ == "__main__":
    main()
