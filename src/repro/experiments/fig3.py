"""Fig. 3: building-block I–V behaviour.

(a) Saturation-current flatness of the three design variants — source
degeneration suppresses the short-channel drift.
(b) Block saturation current vs the control voltage Vgs0, including the
balanced bias pair used for challenge bits 0 and 1.
"""

from __future__ import annotations

import numpy as np

from repro.blocks.calibration import balance_bias, block_saturation_current
from repro.blocks.iv import iv_sweep_all, isat_vs_gate_bias
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32
from repro.experiments.base import ExperimentTable


def run(tech=PTM32, conditions=NOMINAL_CONDITIONS, *, points: int = 41):
    """Produce the Fig. 3(a) and Fig. 3(b) data tables."""
    curves = iv_sweep_all(tech, conditions, points=points)
    table_a = ExperimentTable(
        title="Fig. 3a: I-V saturation drift per block design",
        columns=("design", "sd_levels", "i_at_1p2v_A", "i_at_2v_A", "relative_drift"),
    )
    for name, levels in (("bare", 0), ("sd1", 1), ("sd2", 2)):
        curve = curves[name]
        i_low = float(np.interp(1.2, curve.voltages, curve.currents))
        i_high = float(np.interp(2.0, curve.voltages, curve.currents))
        table_a.add_row(
            design=name,
            sd_levels=levels,
            i_at_1p2v_A=i_low,
            i_at_2v_A=i_high,
            relative_drift=(i_high - i_low) / i_high,
        )
    table_a.notes.append(
        "paper: SD flattens the saturation region (qualitative, Fig. 3a)"
    )

    biases, currents = isat_vs_gate_bias(tech, conditions)
    balanced = balance_bias(tech, conditions)
    table_b = ExperimentTable(
        title="Fig. 3b: block saturation current vs Vgs0",
        columns=("vgs0_V", "isat_A"),
    )
    for bias, current in zip(biases, currents):
        table_b.add_row(vgs0_V=float(bias), isat_A=float(current))
    table_b.notes.append(
        f"bit-1 bias {conditions.vgs_bit1} V pairs with balanced bit-0 bias "
        f"{balanced:.4f} V (paper: 0.5 V / 0.67 V on its SPICE model); "
        f"equal nominal Isat = {block_saturation_current(balanced, tech, conditions):.4g} A"
    )
    return table_a, table_b


def main():
    for table in run():
        table.show()


if __name__ == "__main__":
    main()
