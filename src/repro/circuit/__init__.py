"""SPICE-lite circuit substrate.

The paper characterises its PPUF with SPICE on a 32 nm predictive technology
model.  This subpackage is the substitute substrate: first-order device
physics (square-law MOSFET with channel-length modulation, Shockley diode,
linear resistor), a Monte-Carlo process-variation model, and a nonlinear DC
solver built on the incremental passivity the paper relies on.

Public API
----------
:class:`~repro.circuit.ptm32.Technology`        technology parameter card
:class:`~repro.circuit.devices.mosfet.Mosfet`   MOS transistor model
:class:`~repro.circuit.devices.diode.Diode`     junction diode model
:class:`~repro.circuit.devices.resistor.Resistor`
:class:`~repro.circuit.devices.stack.SeriesStack`
:class:`~repro.circuit.variation.VariationModel`
:class:`~repro.circuit.table.EdgeTable`         shared-grid edge I–V tables
:func:`~repro.circuit.dc.solve_dc`              damped-Newton nodal solver
"""

from repro.circuit.ptm32 import Technology, PTM32, OperatingConditions
from repro.circuit.devices.mosfet import Mosfet
from repro.circuit.devices.diode import Diode
from repro.circuit.devices.resistor import Resistor
from repro.circuit.devices.stack import SeriesStack
from repro.circuit.spatial import SpatialField
from repro.circuit.transient import TransientResult, simulate_turn_on
from repro.circuit.variation import VariationModel, VariationSample
from repro.circuit.table import EdgeTable
from repro.circuit.dc import DCSolution, solve_dc
from repro.circuit.linearize import small_signal_conductances
from repro.circuit.rc import settling_time_linearized

__all__ = [
    "Technology",
    "PTM32",
    "OperatingConditions",
    "Mosfet",
    "Diode",
    "Resistor",
    "SeriesStack",
    "VariationModel",
    "VariationSample",
    "SpatialField",
    "TransientResult",
    "simulate_turn_on",
    "EdgeTable",
    "DCSolution",
    "solve_dc",
    "small_signal_conductances",
    "settling_time_linearized",
]
