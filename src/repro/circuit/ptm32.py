"""32 nm-like technology parameter card.

The paper runs SPICE with the 32 nm Predictive Technology Model and ITRS
process-variation numbers (sigma_Vt = 35 mV).  We do not ship PTM netlists;
instead this card captures the handful of first-order parameters the paper's
arguments actually exercise:

* square-law transconductance and threshold voltage (sets the saturation
  current that becomes an edge capacity),
* channel-length modulation ``lam`` (the short-channel effect whose residual
  slope is the *simulation inaccuracy* of Requirement 2),
* diode saturation current / ideality (sets the ~0.4 V per-diode drop that
  motivates V(s) = 2 V),
* degeneration resistors and the bias points quoted in Section 5
  (Vb = 0.1 V, Vc = 1.2 V, bit-0/bit-1 gate biases 0.67 V / 0.5 V),
* node capacitance per incident edge (drives the O(n) execution delay).

The numeric values are tuned so the nominal edge saturation current lands in
the tens-of-nanoamps range, which reproduces the paper's measured output
scale (3.5 uA average network current at n = 100 and ~33.6 uA extrapolated
at n = 900, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DeviceError
from repro.units import ROOM_TEMPERATURE, celsius, femto, milli


@dataclass(frozen=True)
class Technology:
    """Technology parameters shared by all devices of a PPUF instance.

    Attributes
    ----------
    vt0:
        Nominal NMOS threshold voltage [V] at the reference temperature.
    k_prime:
        Square-law transconductance factor ``k`` in ``Isat = k*(Vgs-Vt)^2``
        [A/V^2].
    lam:
        Channel-length modulation coefficient [1/V]; the knob for
        short-channel-effect severity.
    subthreshold_theta:
        Smoothing width [V] of the softplus overdrive (an EKV-style blend of
        subthreshold and strong inversion; keeps every I-V curve smooth and
        strictly monotone).
    diode_is:
        Diode saturation current [A].
    diode_n:
        Diode ideality factor.
    r_degeneration:
        Source-degeneration resistor value [Ohm] (R1 and R2 in Fig. 2).
    sigma_vt:
        Random threshold-voltage standard deviation [V] (ITRS: 35 mV).
    sigma_vt_systematic:
        Across-die systematic threshold component [V]; cancelled to first
        order by the paper's side-by-side placement (Section 4.1).
    vt_tempco:
        dVt/dT [V/K]; negative (threshold drops when hot).
    mobility_exponent:
        Mobility temperature exponent: ``k(T) = k*(T/T0)**mobility_exponent``.
    c_edge:
        Capacitance contributed to a crossbar node by one incident edge
        block (device + wire) [F].
    c_node0:
        Fixed per-node capacitance [F].
    temperature:
        Reference temperature [K].
    """

    vt0: float = 0.42
    k_prime: float = 5.5e-6
    lam: float = 0.12
    subthreshold_theta: float = 0.04
    diode_is: float = 1e-11
    diode_n: float = 1.0
    r_degeneration: float = 2e6
    sigma_vt: float = milli(35.0)
    sigma_vt_systematic: float = milli(15.0)
    vt_tempco: float = -1.0e-3
    mobility_exponent: float = -1.5
    # Per-edge and fixed node capacitance shares, calibrated so the
    # Lin-Mead bound reproduces Fig. 7(a)'s execution-delay axis
    # (~0.1 us at 20 nodes, ~0.5 us at 100 nodes) given the ~70 MOhm
    # effective edge resistance of the default bias point.
    c_edge: float = femto(0.035)
    c_node0: float = femto(0.3)
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self):
        if self.k_prime <= 0:
            raise DeviceError(f"k_prime must be positive, got {self.k_prime}")
        if self.lam < 0:
            raise DeviceError(f"lambda must be non-negative, got {self.lam}")
        if self.subthreshold_theta <= 0:
            raise DeviceError("subthreshold_theta must be positive")
        if self.diode_is <= 0 or self.diode_n <= 0:
            raise DeviceError("diode parameters must be positive")
        if self.r_degeneration < 0:
            raise DeviceError("degeneration resistance must be non-negative")
        if self.sigma_vt < 0 or self.sigma_vt_systematic < 0:
            raise DeviceError("variation sigmas must be non-negative")
        if self.c_edge <= 0 or self.c_node0 < 0:
            raise DeviceError("capacitances must be positive")
        if self.temperature <= 0:
            raise DeviceError("temperature must be positive kelvin")

    def at_temperature(self, temperature_k: float) -> "Technology":
        """Return a card with temperature-shifted Vt and mobility.

        Applies ``vt_tempco`` and ``mobility_exponent`` relative to the
        current card, then re-bases the reference temperature.
        """
        if temperature_k <= 0:
            raise DeviceError("temperature must be positive kelvin")
        delta_t = temperature_k - self.temperature
        return replace(
            self,
            vt0=self.vt0 + self.vt_tempco * delta_t,
            k_prime=self.k_prime * (temperature_k / self.temperature) ** self.mobility_exponent,
            temperature=temperature_k,
        )


#: The default card used throughout the experiments ("PTM-32-like").
PTM32 = Technology()


@dataclass(frozen=True)
class OperatingConditions:
    """Bias and environment settings of a PPUF evaluation (Section 5).

    Attributes
    ----------
    v_supply:
        Source-node voltage V(s) [V]; 2 V in the paper ("because of the
        voltage drop on the diodes").
    v_b:
        Cascode level shift Vb [V].
    v_c:
        Control-voltage budget: Vgs0 + Vgs1 = Vc [V].
    vgs_bit1:
        Gate bias of the first stack when the challenge bit is 1 [V].
    vgs_bit0:
        Gate bias of the first stack when the challenge bit is 0 [V].
        The paper quotes 0.67 V for its SPICE model; our symmetric stack
        model balances exactly at ``Vc - vgs_bit1 = 0.70`` (see
        :func:`repro.blocks.calibration.balance_bias`), so 0.70 is the
        default to keep the bit-0/bit-1 nominal currents equal as
        Requirement 3 demands.
    temperature:
        Ambient temperature [K].
    """

    v_supply: float = 2.0
    v_b: float = 0.1
    v_c: float = 1.2
    vgs_bit1: float = 0.5
    vgs_bit0: float = 0.70
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self):
        if self.v_supply <= 0:
            raise DeviceError("supply voltage must be positive")
        if not 0 < self.vgs_bit1 < self.v_c:
            raise DeviceError("vgs_bit1 must lie inside (0, v_c)")
        if not 0 < self.vgs_bit0 < self.v_c:
            raise DeviceError("vgs_bit0 must lie inside (0, v_c)")
        if self.temperature <= 0:
            raise DeviceError("temperature must be positive kelvin")

    def gate_biases(self, bit: int):
        """Return ``(vgs0, vgs1)`` of the two stacks for a challenge bit."""
        if bit not in (0, 1):
            raise DeviceError(f"challenge bit must be 0 or 1, got {bit}")
        vgs0 = self.vgs_bit1 if bit else self.vgs_bit0
        return vgs0, self.v_c - vgs0

    def with_supply_scale(self, scale: float) -> "OperatingConditions":
        """Supply-voltage corner: scale V(s) (paper uses ±10 %)."""
        if scale <= 0:
            raise DeviceError("supply scale must be positive")
        return replace(self, v_supply=self.v_supply * scale)

    def with_temperature_celsius(self, temp_c: float) -> "OperatingConditions":
        """Temperature corner (paper range: −20 °C … 80 °C)."""
        return replace(self, temperature=celsius(temp_c))


#: Default operating point from Section 5 of the paper.
NOMINAL_CONDITIONS = OperatingConditions()

# Reference edge voltage at which the public simulation model defines an
# edge's capacity (see repro.blocks.edge.EdgeBlock.capacity).  The edge
# block's knee (two diode drops plus the two stack saturation voltages)
# sits near 0.55 V, so with V(s) = 2 V even the edges of a two-hop
# source-to-sink path (~1 V each) are saturated — the reason the paper
# picks a 2 V supply.  1.0 V is the middle of that operating window.
CAPACITY_REFERENCE_VOLTAGE = 1.0

# Expected scale of a single edge's saturation current with the default
# card: k*(vgs_bit1 - vt0)^2 ~ 5.5e-6 * 0.08^2 ~ 35 nA.
NOMINAL_EDGE_CURRENT = PTM32.k_prime * (NOMINAL_CONDITIONS.vgs_bit1 - PTM32.vt0) ** 2

__all__ = [
    "Technology",
    "PTM32",
    "OperatingConditions",
    "NOMINAL_CONDITIONS",
    "CAPACITY_REFERENCE_VOLTAGE",
    "NOMINAL_EDGE_CURRENT",
]
