"""Shared-voltage-grid edge I–V tables.

The network Newton solver evaluates every edge block at every iteration.
Doing that through the exact device stack (a Brent solve per edge) would be
hopeless in Python, so each edge's strictly increasing I(V) characteristic
is tabulated once on a *uniform shared voltage grid*.  Evaluation is then a
single vectorised index computation — no per-edge Python work.

The table also carries the running integral of I(V) (the *co-content*),
which is the convex potential whose minimiser is the DC solution of an
incrementally passive network; the solver does line search on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, SolverError

#: Conductance floor [S].  Keeps the Newton system positive definite where
#: a block is deeply saturated or reverse biased; 1e-12 S at 2 V contributes
#: 2 pA against a ~35 nA signal (3 orders below the paper's 1 % inaccuracy).
GMIN = 1e-12


def _current_sample_grid() -> np.ndarray:
    """Normalised current samples ``s = I / I_scale`` for table building.

    Dense around the saturation knee (s ≈ 1) where the curvature lives.
    """
    # Geometric section through the diode exponential (tiny currents span
    # decades of conductance), linear ramp to the knee, dense knee, tail.
    sub = np.geomspace(1e-8, 0.02, 60, endpoint=False)
    low = np.linspace(0.02, 0.85, 50, endpoint=False)
    knee = np.linspace(0.85, 1.2, 220, endpoint=False)
    tail = np.geomspace(1.2, 16.0, 40)
    return np.concatenate([[0.0], sub, low, knee, tail])


@dataclass
class EdgeTable:
    """Tabulated I(V), conductance and co-content for a set of edges.

    Attributes
    ----------
    v_grid:
        Uniform voltage grid, ``0 .. v_max`` inclusive.
    currents:
        Array (edges, grid) of currents at the grid voltages.
    cocontent:
        Array (edges, grid): ``integral_0^V I dV`` per edge (trapezoid).
    """

    v_grid: np.ndarray
    currents: np.ndarray
    cocontent: np.ndarray

    @classmethod
    def build(
        cls,
        v_of_i,
        i_scale: np.ndarray,
        *,
        v_max: float,
        num_points: int = 481,
    ) -> "EdgeTable":
        """Tabulate edges given their exact inverse characteristic.

        Parameters
        ----------
        v_of_i:
            Callable mapping an ``(edges, k)`` current matrix to the matching
            voltage matrix (strictly increasing along axis 1).
        i_scale:
            Per-edge current scale (approximate saturation current) used to
            place the sample grid around each edge's knee.
        v_max:
            Upper end of the voltage grid; must cover the largest voltage an
            edge can see (the supply).
        num_points:
            Grid resolution.
        """
        i_scale = np.asarray(i_scale, dtype=np.float64)
        if np.any(i_scale <= 0):
            raise DeviceError("current scales must be positive")
        if v_max <= 0:
            raise DeviceError(f"v_max must be positive, got {v_max}")

        s = _current_sample_grid()
        for _ in range(30):
            i_samples = i_scale[:, None] * s[None, :]
            v_samples = v_of_i(i_samples)
            if np.all(v_samples[:, -1] >= v_max):
                break
            s = np.concatenate([s, s[-1:] * 2.0])
        else:
            raise SolverError("could not extend current grid to cover v_max")

        v_grid = np.linspace(0.0, v_max, num_points)
        currents = np.empty((i_scale.size, num_points))
        for e in range(i_scale.size):
            currents[e] = np.interp(v_grid, v_samples[e], i_samples[e])
        # I(0) must be exactly 0 and the table monotone; both hold by
        # construction, but guard against interpolation artefacts.
        currents[:, 0] = 0.0
        np.maximum.accumulate(currents, axis=1, out=currents)

        h = v_grid[1] - v_grid[0]
        segment_area = 0.5 * (currents[:, 1:] + currents[:, :-1]) * h
        cocontent = np.concatenate(
            [np.zeros((i_scale.size, 1)), np.cumsum(segment_area, axis=1)], axis=1
        )
        return cls(v_grid=v_grid, currents=currents, cocontent=cocontent)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.currents.shape[0]

    @property
    def v_max(self) -> float:
        return float(self.v_grid[-1])

    def evaluate(self, dv: np.ndarray):
        """Evaluate all edges at per-edge voltages ``dv``.

        Returns ``(current, conductance, cocontent)`` arrays.  Negative
        voltages (reverse-biased blocks) fall back to the GMIN leak so the
        Newton system stays positive definite; voltages beyond the grid are
        clamped (they cannot occur for node voltages inside ``[0, v_max]``).
        """
        dv = np.asarray(dv, dtype=np.float64)
        if dv.shape != (self.num_edges,):
            raise DeviceError(
                f"expected voltages of shape ({self.num_edges},), got {dv.shape}"
            )
        h = self.v_grid[1] - self.v_grid[0]
        clipped = np.clip(dv, 0.0, self.v_max)
        idx = np.minimum((clipped / h).astype(np.int64), len(self.v_grid) - 2)
        frac = clipped - self.v_grid[idx]
        rows = np.arange(self.num_edges)
        i0 = self.currents[rows, idx]
        i1 = self.currents[rows, idx + 1]
        slope = (i1 - i0) / h
        current = i0 + slope * frac
        cocontent = self.cocontent[rows, idx] + i0 * frac + 0.5 * slope * frac * frac

        conductance = np.maximum(slope, GMIN)
        # Reverse bias: tiny ohmic leak keeps the potential strictly convex.
        negative = dv < 0.0
        if np.any(negative):
            current = np.where(negative, GMIN * dv, current)
            conductance = np.where(negative, GMIN, conductance)
            cocontent = np.where(negative, 0.5 * GMIN * dv * dv, cocontent)
        return current, conductance, cocontent
