"""Process-variation model.

The paper assumes threshold-voltage variation ~ N(0, 35 mV) per ITRS, plus a
*systematic* across-die component.  Section 4.1's mitigation — placing the
transistors of the two networks side by side — makes the systematic part
common to both networks, so the differential comparison cancels it.  The
model here reproduces that: a :class:`VariationSample` per network holds the
per-transistor random shifts, while :meth:`VariationModel.sample_pair`
optionally shares one systematic field between the two networks of a PPUF.

Each edge block contains four transistors (M1, M2 in the bit-controlled
stack; M3, M4 in the complementary stack), hence the ``(edges, 4)`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.ptm32 import Technology
from repro.errors import DeviceError

#: Column indices into a sample's ``delta_vt`` matrix.
M1_TOP, M2_BOTTOM, M3_TOP, M4_BOTTOM = 0, 1, 2, 3


@dataclass(frozen=True)
class VariationSample:
    """Per-edge threshold shifts for one network.

    Attributes
    ----------
    delta_vt:
        Array of shape ``(edges, 4)`` [V]: random (mismatch) component for
        transistors M1, M2, M3, M4 of each edge block.
    systematic:
        Array of shape ``(edges,)`` [V]: across-die component added to every
        transistor of the block.
    """

    delta_vt: np.ndarray
    systematic: np.ndarray

    def __post_init__(self):
        if self.delta_vt.ndim != 2 or self.delta_vt.shape[1] != 4:
            raise DeviceError(
                f"delta_vt must have shape (edges, 4), got {self.delta_vt.shape}"
            )
        if self.systematic.shape != (self.delta_vt.shape[0],):
            raise DeviceError(
                "systematic must have shape (edges,) matching delta_vt"
            )

    @property
    def num_edges(self) -> int:
        return self.delta_vt.shape[0]

    def total(self, column: int) -> np.ndarray:
        """Random + systematic shift for one transistor column."""
        return self.delta_vt[:, column] + self.systematic

    @classmethod
    def nominal(cls, num_edges: int) -> "VariationSample":
        """A variation-free sample (all shifts zero)."""
        return cls(
            delta_vt=np.zeros((num_edges, 4)),
            systematic=np.zeros(num_edges),
        )


@dataclass(frozen=True)
class VariationModel:
    """Sampler for process variation tied to a technology card."""

    tech: Technology

    def sample(
        self,
        num_edges: int,
        rng: np.random.Generator,
        *,
        positions: np.ndarray = None,
    ) -> VariationSample:
        """One network's variation: independent mismatch + systematic field.

        With ``positions`` (the (edges, 2) die coordinates of the blocks,
        e.g. :meth:`repro.ppuf.crossbar.Crossbar.block_positions`), the
        systematic component is a *spatially correlated* smooth field
        (:class:`repro.circuit.spatial.SpatialField`); without, it degrades
        to independent draws (kept for isolated-block Monte Carlo).
        """
        if num_edges < 1:
            raise DeviceError(f"num_edges must be >= 1, got {num_edges}")
        delta_vt = rng.normal(0.0, self.tech.sigma_vt, size=(num_edges, 4))
        systematic = self._systematic(num_edges, rng, positions)
        return VariationSample(delta_vt=delta_vt, systematic=systematic)

    def _systematic(self, num_edges, rng, positions) -> np.ndarray:
        from repro.circuit.spatial import SpatialField

        if positions is None:
            return rng.normal(0.0, self.tech.sigma_vt_systematic, size=num_edges)
        field = SpatialField.sample(self.tech.sigma_vt_systematic, rng)
        return field(positions)

    def sample_pair(
        self,
        num_edges: int,
        rng: np.random.Generator,
        *,
        side_by_side: bool = True,
        positions: np.ndarray = None,
    ):
        """Variation for the two networks of one PPUF.

        With ``side_by_side=True`` (the paper's layout) both networks share
        one systematic field; with ``False`` each network draws its own —
        the ablation for Section 4.1's placement argument.
        """
        sample_a = self.sample(num_edges, rng, positions=positions)
        delta_b = rng.normal(0.0, self.tech.sigma_vt, size=(num_edges, 4))
        if side_by_side:
            sample_b = VariationSample(delta_vt=delta_b, systematic=sample_a.systematic)
        else:
            sample_b = VariationSample(
                delta_vt=delta_b,
                systematic=self._systematic(num_edges, rng, positions),
            )
        return sample_a, sample_b
