"""Series-stack composition: the heart of the building-block model.

Every element of a series stack carries the same current I and exposes a
strictly increasing voltage-as-a-function-of-current, so the stack voltage
is simply the sum, computed *bottom-up* so that each transistor's gate
overdrive sees the voltage developed below it — this is exactly the
source-degeneration negative feedback of Fig. 2:

* level 1: the degeneration resistor lifts M2's source by ``I * R``,
  reducing its Vgs as current grows;
* level 2: M2 + R together lift M1's source; M1's gate sits ``Vb`` above
  the common gate bias so both devices stay saturated.

Because V(I) is strictly increasing, the forward characteristic I(V) is
recovered by scalar root finding, and incremental passivity holds by
construction (verified in :mod:`repro.blocks.passivity`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.circuit.devices import mosfet
from repro.circuit.ptm32 import Technology
from repro.errors import DeviceError


def stack_voltage(
    current,
    gate_bias,
    tech: Technology,
    *,
    sd_levels: int = 2,
    v_b: float = 0.1,
    delta_vt_bottom=0.0,
    delta_vt_top=0.0,
):
    """Voltage across one transistor stack carrying ``current``.

    Parameters broadcast: ``current`` may be an (E, K) current grid while the
    Vt shifts are (E, 1) per-edge columns, etc.

    Parameters
    ----------
    current:
        Stack current [A], non-negative.
    gate_bias:
        Common gate control voltage Vgs0 (or Vgs1) referenced to the stack's
        bottom terminal.
    tech:
        Technology card (supplies k, Vt0, lambda, R).
    sd_levels:
        0 — bare transistor (Fig. 2a); 1 — one resistor degeneration
        (Fig. 2b); 2 — nested cascode degeneration (Fig. 2c).
    v_b:
        Cascode gate level shift (only used at ``sd_levels == 2``).
    delta_vt_bottom, delta_vt_top:
        Process-variation threshold shifts of the bottom (M2) and top (M1)
        transistors.
    """
    if sd_levels not in (0, 1, 2):
        raise DeviceError(f"sd_levels must be 0, 1 or 2, got {sd_levels}")
    current = np.asarray(current, dtype=np.float64)
    v = np.zeros(np.broadcast(current, delta_vt_bottom, delta_vt_top).shape)

    if sd_levels >= 1:
        v = v + current * tech.r_degeneration
    vgs_bottom = gate_bias - v
    vt_bottom = tech.vt0 + np.asarray(delta_vt_bottom)
    v = v + mosfet.vds_from_current(current, vgs_bottom, vt_bottom, tech)
    if sd_levels == 2:
        vgs_top = gate_bias + v_b - v
        vt_top = tech.vt0 + np.asarray(delta_vt_top)
        v = v + mosfet.vds_from_current(current, vgs_top, vt_top, tech)
    return v


def stack_saturation_current(
    gate_bias,
    tech: Technology,
    *,
    sd_levels: int = 2,
    delta_vt_bottom=0.0,
    iterations: int = 60,
):
    """Self-consistent saturation current of a stack (broadcasts).

    The current-limiting device is the bottom transistor: degeneration
    reduces its effective overdrive by ``I * R``, so the saturation point
    solves the fixed-point equation ``I = k * ov_eff(Vgs - I*R - Vt)^2``.
    Solved by damped fixed-point iteration (the map is a contraction for the
    parameter ranges of interest; convergence is asserted by the tests).
    """
    vt = tech.vt0 + np.asarray(delta_vt_bottom, dtype=np.float64)
    r = tech.r_degeneration if sd_levels >= 1 else 0.0
    current = mosfet.saturation_current(gate_bias, vt, tech)
    for _ in range(iterations):
        proposal = mosfet.saturation_current(gate_bias - current * r, vt, tech)
        current = 0.5 * (current + proposal)
    return current


@dataclass(frozen=True)
class SeriesStack:
    """One transistor stack bound to concrete parameters.

    Scalar convenience wrapper over :func:`stack_voltage` with a forward
    I(V) solved by Brent's method.
    """

    tech: Technology
    gate_bias: float
    sd_levels: int = 2
    v_b: float = 0.1
    delta_vt_bottom: float = 0.0
    delta_vt_top: float = 0.0

    def voltage(self, current: float) -> float:
        """V(I) across the stack."""
        return float(
            stack_voltage(
                current,
                self.gate_bias,
                self.tech,
                sd_levels=self.sd_levels,
                v_b=self.v_b,
                delta_vt_bottom=self.delta_vt_bottom,
                delta_vt_top=self.delta_vt_top,
            )
        )

    def current(self, voltage: float) -> float:
        """I(V) by inverting the strictly increasing V(I)."""
        if voltage <= 0:
            return 0.0
        hi = self.saturation_current() * 1.5 + 1e-12
        # Expand the bracket until V(hi) exceeds the target (the saturation
        # slope is finite thanks to the lambda floor, so this terminates).
        for _ in range(200):
            if self.voltage(hi) >= voltage:
                break
            hi *= 2.0
        else:
            raise DeviceError("could not bracket the stack operating point")
        return float(brentq(lambda i: self.voltage(i) - voltage, 0.0, hi, xtol=1e-18))

    def saturation_current(self) -> float:
        """Self-consistent saturation current of this stack."""
        return float(
            stack_saturation_current(
                self.gate_bias,
                self.tech,
                sd_levels=self.sd_levels,
                delta_vt_bottom=self.delta_vt_bottom,
            )
        )
