"""Device models: MOSFET, diode, resistor, and series-stack composition."""

from repro.circuit.devices.mosfet import Mosfet
from repro.circuit.devices.diode import Diode
from repro.circuit.devices.resistor import Resistor
from repro.circuit.devices.stack import SeriesStack

__all__ = ["Mosfet", "Diode", "Resistor", "SeriesStack"]
