"""Square-law MOSFET with channel-length modulation and smooth turn-on.

The model is deliberately first-order — it is exactly the physics the
paper's argument uses:

* saturation current ``Isat0 = k * ov_eff(Vgs - Vt)^2`` instantiates the edge
  *capacity*;
* channel-length modulation ``lam`` makes the current keep creeping up with
  Vds — the short-channel effect (SCE) that source degeneration must
  suppress (Requirement 2);
* the softplus overdrive ``ov_eff`` blends sub-threshold and strong
  inversion (EKV-style), keeping every characteristic smooth, strictly
  monotone and defined for devices pushed below threshold by process
  variation.

All functions broadcast over numpy arrays; the inverse characteristic
``vds_from_current`` is the workhorse of the series-stack composition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.ptm32 import Technology
from repro.errors import DeviceError

# Floor on the channel-length-modulation slope: a mathematically hard
# saturation (lam = 0) would make V(I) undefined above Isat0; a vanishing
# slope keeps the map invertible without affecting any result at the
# accuracy levels studied here.
_LAMBDA_FLOOR = 1e-7


def softplus_overdrive(vgs_minus_vt, theta: float):
    """Smooth effective overdrive: ``theta * log(1 + exp(x / theta))``.

    Approaches ``x`` for ``x >> theta`` (strong inversion) and decays to an
    exponentially small positive value below threshold.
    """
    x = np.asarray(vgs_minus_vt, dtype=np.float64) / theta
    # Numerically safe softplus, floored so a deeply-off device still has a
    # finite (astronomically large) V(I) instead of a divide-by-zero.
    out = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
    return np.maximum(theta * out, 1e-12)


def saturation_current(vgs, vt, tech: Technology):
    """Saturation current at the channel pinch-off point (Vds = ov_eff)."""
    ov = softplus_overdrive(np.asarray(vgs) - np.asarray(vt), tech.subthreshold_theta)
    return tech.k_prime * ov * ov


def drain_current(vds, vgs, vt, tech: Technology):
    """Forward drain current for given terminal voltages (broadcasts).

    Triode below ``Vds = ov_eff``; saturation with slope
    ``lam * Isat0`` above.  Negative Vds returns 0 (the stack's diodes
    prevent reverse conduction; the device model mirrors that contract).
    """
    vds = np.asarray(vds, dtype=np.float64)
    ov = softplus_overdrive(np.asarray(vgs) - np.asarray(vt), tech.subthreshold_theta)
    isat0 = tech.k_prime * ov * ov
    x = np.clip(vds / ov, 0.0, None)
    lam = max(tech.lam, _LAMBDA_FLOOR)
    triode = isat0 * (2.0 * x - x * x)
    saturation = isat0 * (1.0 + lam * (vds - ov))
    current = np.where(x < 1.0, triode, saturation)
    return np.where(vds <= 0.0, 0.0, current)


def vds_from_current(current, vgs, vt, tech: Technology):
    """Inverse characteristic: the Vds needed to carry ``current``.

    Strictly increasing in ``current``; pieces meet continuously at the
    pinch-off point.  Raises for negative currents (the composition layer
    guarantees non-negativity via the series diodes).
    """
    current = np.asarray(current, dtype=np.float64)
    if np.any(current < 0):
        raise DeviceError("MOSFET stack current must be non-negative")
    ov = softplus_overdrive(np.asarray(vgs) - np.asarray(vt), tech.subthreshold_theta)
    isat0 = tech.k_prime * ov * ov
    lam = max(tech.lam, _LAMBDA_FLOOR)
    ratio = current / isat0
    # Triode inverse: 2x - x^2 = ratio  =>  x = 1 - sqrt(1 - ratio).
    triode = ov * (1.0 - np.sqrt(np.clip(1.0 - ratio, 0.0, None)))
    # Saturation inverse; slope d(vds)/dI = 1 / (lam * isat0).
    saturation = ov + (ratio - 1.0) / lam
    return np.where(ratio < 1.0, triode, saturation)


def saturation_conductance(vgs, vt, tech: Technology):
    """Small-signal output conductance in saturation, ``lam * Isat0``."""
    lam = max(tech.lam, _LAMBDA_FLOOR)
    return lam * saturation_current(vgs, vt, tech)


@dataclass(frozen=True)
class Mosfet:
    """A single transistor bound to a technology card and a Vt shift.

    Thin object wrapper over the vectorised module functions; used where a
    device identity matters (I–V sweeps, passivity checks, unit tests).
    """

    tech: Technology
    delta_vt: float = 0.0

    @property
    def vt(self) -> float:
        return self.tech.vt0 + self.delta_vt

    def isat(self, vgs: float) -> float:
        """Saturation current at gate bias ``vgs``."""
        return float(saturation_current(vgs, self.vt, self.tech))

    def current(self, vds: float, vgs: float) -> float:
        return float(drain_current(vds, vgs, self.vt, self.tech))

    def vds(self, current: float, vgs: float) -> float:
        return float(vds_from_current(current, vgs, self.vt, self.tech))
