"""Linear resistor — the degeneration element of the SD technique."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError


def resistor_voltage(current, resistance: float):
    """Ohm's law, broadcasting over current arrays."""
    if resistance < 0:
        raise DeviceError(f"resistance must be non-negative, got {resistance}")
    return np.asarray(current, dtype=np.float64) * resistance


@dataclass(frozen=True)
class Resistor:
    """A resistor with a fixed value [Ohm]."""

    resistance: float

    def __post_init__(self):
        if self.resistance < 0:
            raise DeviceError(f"resistance must be non-negative, got {self.resistance}")

    def voltage(self, current: float) -> float:
        return float(self.resistance * current)

    def current(self, voltage: float) -> float:
        if self.resistance == 0:
            raise DeviceError("a zero-ohm resistor has no defined I(V)")
        return float(voltage / self.resistance)
