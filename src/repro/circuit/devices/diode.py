"""Shockley junction diode.

The basic building block carries a diode at each end (Fig. 2) whose only
roles are (i) enforcing the edge direction — flow is a non-negative
quantity — and (ii) contributing the ~0.4 V forward drop that motivates the
paper's V(s) = 2 V supply choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.ptm32 import Technology
from repro.errors import DeviceError
from repro.units import thermal_voltage


def diode_voltage(current, tech: Technology, temperature_k=None):
    """Forward voltage for a given current: ``n * vT * log(1 + I / Is)``."""
    current = np.asarray(current, dtype=np.float64)
    if np.any(current < 0):
        raise DeviceError("diode current must be non-negative (blocking direction)")
    vt = thermal_voltage(temperature_k if temperature_k is not None else tech.temperature)
    return tech.diode_n * vt * np.log1p(current / tech.diode_is)


def diode_current(voltage, tech: Technology, temperature_k=None):
    """Forward current for a given voltage; 0 for reverse bias."""
    voltage = np.asarray(voltage, dtype=np.float64)
    vt = thermal_voltage(temperature_k if temperature_k is not None else tech.temperature)
    arg = np.clip(voltage / (tech.diode_n * vt), None, 60.0)
    current = tech.diode_is * np.expm1(arg)
    return np.clip(current, 0.0, None)


@dataclass(frozen=True)
class Diode:
    """A diode bound to a technology card (thin object wrapper)."""

    tech: Technology

    def voltage(self, current: float) -> float:
        return float(diode_voltage(current, self.tech))

    def current(self, voltage: float) -> float:
        return float(diode_current(voltage, self.tech))
