"""Nonlinear transient simulation of the PPUF network.

The execution delay claims of Section 3.3 are *bounds*; this module
measures the settling behaviour directly, the way the paper's SPICE
transient runs do.  The network ODE is

    C dv/dt = -F(v),

with F the KCL residual and C the diagonal node-capacitance matrix.
Backward Euler turns each step into

    minimize  J(v) + sum_i C_i (v_i - v_prev_i)^2 / (2 h),

where J is the convex co-content — i.e. every implicit step is itself a
strongly convex problem, solved by the same damped Newton machinery as the
DC operating point.  No step-size luck is needed for stability (backward
Euler is A-stable) and convergence per step is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.linalg

from repro.circuit.table import GMIN, EdgeTable
from repro.errors import ConvergenceError, GraphError


@dataclass
class TransientResult:
    """A simulated turn-on transient.

    Attributes
    ----------
    times:
        Sample instants [s] (t = 0 is the supply step).
    source_currents:
        Net current delivered by the source at each instant [A].
    final_current:
        Steady-state source current (the PPUF output) [A].
    settling_time:
        First instant after which the source current stays within
        ``settle_ratio`` of the final value, or ``None`` if the run ended
        before settling (the caller should extend ``duration``).
    """

    times: np.ndarray
    source_currents: np.ndarray
    final_current: float
    settling_time: Optional[float]


def simulate_turn_on(
    n: int,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    table: EdgeTable,
    capacitance: np.ndarray,
    *,
    source: int,
    sink: int,
    v_supply: float,
    duration: float,
    steps: int = 200,
    settle_ratio: float = 1e-2,
    newton_tol: float = None,
) -> TransientResult:
    """Simulate the supply step 0 → V(s) and record the source current.

    Parameters
    ----------
    capacitance:
        Length-n diagonal node capacitances [F].
    duration:
        Simulated time span [s]; should be several Lin–Mead bounds.
    steps:
        Backward-Euler steps (uniform grid).
    settle_ratio:
        Relative band defining "settled" around the final current.
    """
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    capacitance = np.asarray(capacitance, dtype=np.float64)
    if capacitance.shape != (n,):
        raise GraphError(f"capacitance must have shape ({n},)")
    if np.any(capacitance <= 0):
        raise GraphError("node capacitances must be positive")
    if duration <= 0 or steps < 1:
        raise GraphError("need positive duration and at least one step")
    if not 0 < settle_ratio < 1:
        raise GraphError("settle_ratio must be in (0, 1)")
    if source == sink:
        raise GraphError("source and sink must differ")
    if newton_tol is None:
        newton_tol = 1e-6 * float(table.currents.max())

    internal = np.array([v for v in range(n) if v not in (source, sink)], dtype=np.int64)
    position = np.full(n, -1, dtype=np.int64)
    position[internal] = np.arange(internal.size)
    c_int = capacitance[internal]

    h = duration / steps
    voltages = np.zeros(n)
    voltages[source] = v_supply  # the step is applied at t = 0+
    voltages[sink] = 0.0

    times = [0.0]
    source_currents = [0.0]

    for step in range(1, steps + 1):
        voltages = _backward_euler_step(
            voltages, internal, position, edge_src, edge_dst, table, c_int, h, newton_tol
        )
        dv = voltages[edge_src] - voltages[edge_dst]
        current, _, _ = table.evaluate(dv)
        source_current = float(
            current[edge_src == source].sum() - current[edge_dst == source].sum()
        )
        times.append(step * h)
        source_currents.append(source_current)

    times = np.asarray(times)
    source_currents = np.asarray(source_currents)
    final_current = source_currents[-1]

    settling_time = _settling_instant(
        times, source_currents, final_current, settle_ratio
    )
    return TransientResult(
        times=times,
        source_currents=source_currents,
        final_current=final_current,
        settling_time=settling_time,
    )


def _settling_instant(times, currents, final, ratio) -> Optional[float]:
    if final <= 0:
        return None
    band = ratio * final
    # "final" is just the last sample; if the run ended mid-transient the
    # second half of the run would still be drifting, so demand it sits
    # entirely inside the band before trusting any settling instant.
    midpoint = len(currents) // 2
    if np.any(np.abs(currents[midpoint:] - final) > band):
        return None
    outside = np.abs(currents - final) > band
    last_outside = int(np.max(np.nonzero(outside)[0])) if np.any(outside) else -1
    if last_outside + 1 >= len(times):
        return None
    return float(times[last_outside + 1])


def _backward_euler_step(
    voltages: np.ndarray,
    internal: np.ndarray,
    position: np.ndarray,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    table: EdgeTable,
    c_int: np.ndarray,
    h: float,
    tol: float,
) -> np.ndarray:
    """One implicit step: damped Newton on the strongly convex step objective."""
    previous = voltages[internal].copy()
    current_v = voltages.copy()

    def state(v):
        dv = v[edge_src] - v[edge_dst]
        current, conductance, cocontent = table.evaluate(dv)
        inertial = 0.5 * np.sum(c_int * (v[internal] - previous) ** 2) / h
        objective = float(cocontent.sum()) + inertial
        return objective, current, conductance

    objective, current, conductance = state(current_v)
    for _ in range(100):
        net = np.zeros(current_v.size)
        np.add.at(net, edge_src, current)
        np.subtract.at(net, edge_dst, current)
        gradient = net[internal] + c_int * (current_v[internal] - previous) / h
        if np.max(np.abs(gradient)) < tol:
            return current_v

        size = internal.size
        hessian = np.zeros((size, size))
        pos_src = position[edge_src]
        pos_dst = position[edge_dst]
        src_in = pos_src >= 0
        dst_in = pos_dst >= 0
        both = src_in & dst_in
        diag = np.zeros(size)
        np.add.at(diag, pos_src[src_in], conductance[src_in])
        np.add.at(diag, pos_dst[dst_in], conductance[dst_in])
        hessian[np.arange(size), np.arange(size)] = diag + c_int / h + GMIN
        np.subtract.at(hessian, (pos_src[both], pos_dst[both]), conductance[both])
        np.subtract.at(hessian, (pos_dst[both], pos_src[both]), conductance[both])

        step = -scipy.linalg.solve(hessian, gradient, assume_a="pos")
        directional = float(gradient @ step)
        alpha = 1.0
        for _ in range(50):
            trial = current_v.copy()
            trial[internal] = current_v[internal] + alpha * step
            trial_objective, trial_current, trial_conductance = state(trial)
            if trial_objective <= objective + 1e-4 * alpha * directional:
                current_v = trial
                objective = trial_objective
                current = trial_current
                conductance = trial_conductance
                break
            alpha *= 0.5
        else:
            raise ConvergenceError("transient step line search failed")
    raise ConvergenceError("backward-Euler Newton did not converge")
