"""Small-signal linearisation around a DC operating point."""

from __future__ import annotations

import numpy as np

from repro.circuit.dc import DCSolution
from repro.circuit.table import EdgeTable
from repro.errors import GraphError


def small_signal_conductances(
    solution: DCSolution,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    table: EdgeTable,
) -> np.ndarray:
    """Per-edge incremental conductance ``dI/dV`` at the operating point."""
    dv = solution.voltages[edge_src] - solution.voltages[edge_dst]
    _, conductance, _ = table.evaluate(dv)
    return conductance


def conductance_laplacian(
    n: int,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    conductance: np.ndarray,
) -> np.ndarray:
    """Full n×n small-signal conductance Laplacian.

    Symmetric positive semidefinite; used by :mod:`repro.circuit.rc` for the
    settling-time estimate.
    """
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    conductance = np.asarray(conductance, dtype=np.float64)
    if not (edge_src.shape == edge_dst.shape == conductance.shape):
        raise GraphError("edge arrays must have matching shapes")
    laplacian = np.zeros((n, n))
    np.add.at(laplacian, (edge_src, edge_src), conductance)
    np.add.at(laplacian, (edge_dst, edge_dst), conductance)
    np.subtract.at(laplacian, (edge_src, edge_dst), conductance)
    np.subtract.at(laplacian, (edge_dst, edge_src), conductance)
    return laplacian
