"""Nonlinear DC operating-point solver.

The PPUF circuit is incrementally passive (Section 3.1), which guarantees a
unique steady state.  Mathematically, the node voltages of such a network
minimise the total *co-content*

    J(v) = sum_e  integral_0^{v_i - v_j} I_e(x) dx,

a convex function whose gradient is the KCL residual and whose Hessian is
the (positive definite, after GMIN regularisation) conductance Laplacian.
We therefore solve with damped Newton + Armijo backtracking on J — globally
convergent for this problem class, no SPICE homotopy heuristics needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.circuit.table import GMIN, EdgeTable
from repro.errors import ConvergenceError, GraphError


@dataclass
class DCSolution:
    """Operating point of a PPUF network.

    Attributes
    ----------
    voltages:
        Node voltages (length n), including the pinned source/sink.
    edge_currents:
        Per-edge currents, aligned with the edge arrays passed to the solver.
    source_current:
        Net current delivered by the source node — the PPUF *output* (the
        circuit's max-flow value).
    iterations:
        Newton iterations used.
    residual_norm:
        Final max-norm of the KCL residual [A].
    """

    voltages: np.ndarray
    edge_currents: np.ndarray
    source_current: float
    iterations: int
    residual_norm: float


def solve_dc(
    n: int,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    table: EdgeTable,
    *,
    source: int,
    sink: int,
    v_supply: float,
    tol_current: float = None,
    max_iterations: int = 200,
) -> DCSolution:
    """Solve the network DC operating point.

    Parameters
    ----------
    n:
        Number of circuit nodes.
    edge_src, edge_dst:
        Directed edge endpoint arrays (length E); edge ``e`` conducts from
        ``edge_src[e]`` to ``edge_dst[e]`` only.
    table:
        Edge I–V table built for exactly these edges.
    source, sink:
        Pinned nodes: ``v[source] = v_supply``, ``v[sink] = 0``.
    v_supply:
        Source voltage (must not exceed the table's grid).
    tol_current:
        KCL residual tolerance [A]; defaults to 1e-7 of the largest tabulated
        edge current.
    """
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    if edge_src.shape != edge_dst.shape:
        raise GraphError("edge endpoint arrays must have equal shapes")
    if edge_src.size != table.num_edges:
        raise GraphError("edge table size does not match the edge list")
    if source == sink:
        raise GraphError("source and sink must differ")
    if not (0 <= source < n and 0 <= sink < n):
        raise GraphError("source/sink out of range")
    if v_supply > table.v_max + 1e-12:
        raise GraphError(
            f"v_supply {v_supply} exceeds the table range {table.v_max}"
        )
    if tol_current is None:
        tol_current = 1e-7 * float(table.currents.max())

    internal = np.array([v for v in range(n) if v not in (source, sink)], dtype=np.int64)
    # Position of each node in the reduced (internal-only) system; -1 = pinned.
    position = np.full(n, -1, dtype=np.int64)
    position[internal] = np.arange(internal.size)

    voltages = np.full(n, 0.5 * v_supply)
    voltages[source] = v_supply
    voltages[sink] = 0.0

    def objective_and_state(v: np.ndarray):
        dv = v[edge_src] - v[edge_dst]
        current, conductance, cocontent = table.evaluate(dv)
        # GMIN to ground on internal nodes regularises floating subnetworks.
        leak = 0.5 * GMIN * np.sum(v[internal] ** 2)
        return float(cocontent.sum() + leak), current, conductance

    objective, current, conductance = objective_and_state(voltages)
    iterations = 0
    residual_norm = np.inf

    for iterations in range(1, max_iterations + 1):
        # Gradient of J wrt internal voltages: outflow - inflow (+ leak).
        net = np.zeros(n)
        np.add.at(net, edge_src, current)
        np.subtract.at(net, edge_dst, current)
        gradient = net[internal] + GMIN * voltages[internal]
        residual_norm = float(np.max(np.abs(gradient))) if internal.size else 0.0
        if residual_norm < tol_current:
            break

        hessian = _assemble_hessian(internal.size, position, edge_src, edge_dst, conductance)
        try:
            factor = scipy.linalg.cho_factor(hessian, check_finite=False)
            step = -scipy.linalg.cho_solve(factor, gradient, check_finite=False)
        except scipy.linalg.LinAlgError:
            # Fall back to a ridge-regularised solve.
            hessian[np.diag_indices_from(hessian)] += 1e-3 * GMIN
            step = -np.linalg.solve(hessian, gradient)

        # Armijo backtracking on the convex co-content.
        directional = float(gradient @ step)
        if directional >= 0:
            raise ConvergenceError("Newton step is not a descent direction")
        alpha = 1.0
        for _ in range(60):
            trial = voltages.copy()
            trial[internal] = voltages[internal] + alpha * step
            trial_objective, trial_current, trial_conductance = objective_and_state(trial)
            if trial_objective <= objective + 1e-4 * alpha * directional:
                voltages = trial
                objective = trial_objective
                current = trial_current
                conductance = trial_conductance
                break
            alpha *= 0.5
        else:
            raise ConvergenceError(
                f"line search failed at iteration {iterations} "
                f"(residual {residual_norm:.3e} A)"
            )
    else:
        raise ConvergenceError(
            f"DC solve did not reach {tol_current:.3e} A in "
            f"{max_iterations} iterations (residual {residual_norm:.3e} A)"
        )

    source_current = float(
        current[edge_src == source].sum() - current[edge_dst == source].sum()
    )
    return DCSolution(
        voltages=voltages,
        edge_currents=current,
        source_current=source_current,
        iterations=iterations,
        residual_norm=residual_norm,
    )


def _assemble_hessian(
    size: int,
    position: np.ndarray,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    conductance: np.ndarray,
) -> np.ndarray:
    """Conductance Laplacian restricted to internal nodes (+ GMIN ridge)."""
    hessian = np.zeros((size, size))
    pos_src = position[edge_src]
    pos_dst = position[edge_dst]

    src_in = pos_src >= 0
    dst_in = pos_dst >= 0
    both = src_in & dst_in

    diag = np.zeros(size)
    np.add.at(diag, pos_src[src_in], conductance[src_in])
    np.add.at(diag, pos_dst[dst_in], conductance[dst_in])
    hessian[np.arange(size), np.arange(size)] = diag + GMIN

    np.subtract.at(hessian, (pos_src[both], pos_dst[both]), conductance[both])
    np.subtract.at(hessian, (pos_dst[both], pos_src[both]), conductance[both])
    return hessian
