"""Linearised RC settling-time estimation.

The execution delay of the PPUF is the time for the source current to
stabilise.  Around the DC operating point the network is an RC system

    C dv/dt = -G v,

with G the small-signal conductance Laplacian (internal nodes) and C the
diagonal node-capacitance matrix.  The slowest generalised eigenmode sets
the settling time.  This complements the paper's analytic Lin–Mead bound
(implemented in :mod:`repro.ppuf.delay`) with a physics-based measurement.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import GraphError, SolverError


def node_capacitances(n: int, incident_edges: np.ndarray, c_edge: float, c_node0: float):
    """Diagonal node capacitance: fixed part + one share per incident edge.

    ``incident_edges[i]`` counts edges touching node ``i``; in the complete
    crossbar this is ``2 * (n - 1)``, which is the linear-in-n growth that
    drives the paper's O(n) delay bound.
    """
    incident_edges = np.asarray(incident_edges, dtype=np.float64)
    if incident_edges.shape != (n,):
        raise GraphError(f"incident_edges must have shape ({n},)")
    if c_edge <= 0 or c_node0 < 0:
        raise GraphError("capacitances must be positive")
    return c_node0 + c_edge * incident_edges


def settling_time_linearized(
    laplacian: np.ndarray,
    capacitance: np.ndarray,
    pinned,
    *,
    settle_ratio: float = 1e-3,
) -> float:
    """Settling time of the linearised network [s].

    Parameters
    ----------
    laplacian:
        Full n×n small-signal conductance Laplacian.
    capacitance:
        Length-n diagonal node capacitances.
    pinned:
        Iterable of voltage-pinned nodes (source and sink) removed from the
        dynamic system.
    settle_ratio:
        Residual amplitude defining "settled": T = tau_max * ln(1/ratio).
    """
    n = laplacian.shape[0]
    pinned = set(pinned)
    keep = np.array([v for v in range(n) if v not in pinned], dtype=np.int64)
    if keep.size == 0:
        raise GraphError("no dynamic nodes remain after pinning")
    if not 0 < settle_ratio < 1:
        raise GraphError("settle_ratio must be in (0, 1)")

    g = laplacian[np.ix_(keep, keep)]
    c = np.asarray(capacitance, dtype=np.float64)[keep]
    if np.any(c <= 0):
        raise GraphError("node capacitances must be positive")

    # Generalised problem G x = s C x; symmetrise via C^(-1/2).
    inv_sqrt_c = 1.0 / np.sqrt(c)
    symmetric = inv_sqrt_c[:, None] * g * inv_sqrt_c[None, :]
    rates = scipy.linalg.eigvalsh(symmetric)
    slowest = float(rates[0])
    if slowest <= 0:
        raise SolverError("linearised network has a non-decaying mode")
    tau = 1.0 / slowest
    return tau * float(np.log(1.0 / settle_ratio))
