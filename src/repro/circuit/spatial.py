"""Spatially correlated across-die variation fields.

"Systematic variation" in Section 4.1 means slow gradients across the die
(lithography, stress, thermal history), not per-device lottery.  A field of
independent draws would miss the point of the paper's mitigation — placing
the two networks' transistors side by side works *because* the systematic
component is spatially smooth, so neighbouring devices see almost the same
shift.

The field here is a random low-frequency cosine expansion

    f(x, y) = sigma * sqrt(2/K) * sum_k cos(2*pi*(a_k x + b_k y) + phi_k),

with spatial frequencies |a|, |b| <= max_frequency cycles per die.  Its
marginal standard deviation is ``sigma`` and its correlation length is of
order ``1/max_frequency`` die widths, so nearby blocks are strongly
correlated and far corners are nearly independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError


@dataclass(frozen=True)
class SpatialField:
    """A frozen realisation of a smooth random field over the unit die.

    Attributes
    ----------
    sigma:
        Marginal standard deviation of the field values.
    frequencies:
        (K, 2) spatial frequencies [cycles/die].
    phases:
        (K,) phase offsets.
    """

    sigma: float
    frequencies: np.ndarray
    phases: np.ndarray

    @classmethod
    def sample(
        cls,
        sigma: float,
        rng: np.random.Generator,
        *,
        modes: int = 6,
        max_frequency: float = 1.5,
    ) -> "SpatialField":
        """Draw a random field realisation."""
        if sigma < 0:
            raise DeviceError(f"sigma must be non-negative, got {sigma}")
        if modes < 1:
            raise DeviceError(f"need at least one mode, got {modes}")
        if max_frequency <= 0:
            raise DeviceError("max_frequency must be positive")
        frequencies = rng.uniform(-max_frequency, max_frequency, size=(modes, 2))
        phases = rng.uniform(0.0, 2.0 * np.pi, size=modes)
        return cls(sigma=sigma, frequencies=frequencies, phases=phases)

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        """Evaluate the field at (N, 2) die coordinates in [0, 1]^2."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise DeviceError(
                f"positions must have shape (N, 2), got {positions.shape}"
            )
        if self.sigma == 0.0:
            return np.zeros(positions.shape[0])
        arguments = 2.0 * np.pi * positions @ self.frequencies.T + self.phases
        modes = self.frequencies.shape[0]
        return self.sigma * np.sqrt(2.0 / modes) * np.cos(arguments).sum(axis=1)


def correlation_vs_distance(
    field: SpatialField,
    rng: np.random.Generator,
    *,
    pairs: int = 2000,
    distance: float = 0.05,
):
    """Empirical field correlation for point pairs at a given separation.

    Diagnostic used by the tests: correlation should be high at small
    separations and fall off with distance.
    """
    if not 0 < distance < 1:
        raise DeviceError("distance must be inside (0, 1)")
    base = rng.uniform(0.0, 1.0 - distance, size=(pairs, 2))
    angle = rng.uniform(0.0, 2.0 * np.pi, size=pairs)
    offset = distance * np.stack([np.cos(angle), np.sin(angle)], axis=1)
    other = np.clip(base + offset, 0.0, 1.0)
    values_a = field(base)
    values_b = field(other)
    if values_a.std() == 0 or values_b.std() == 0:
        return 1.0
    return float(np.corrcoef(values_a, values_b)[0, 1])
