"""Matching-based PPUF key exchange (Beckmann–Potkonjak style).

Roles: the *holder* owns the physical device; the *initiator* owns only the
public model; the *eavesdropper* sees everything on the wire.

1. **Setup (public).** A seed derives m challenges; each challenge's
   "response word" is the k-bit transcript of a feedback chain (Section
   3.3), so every word costs k sequential evaluations.
2. **Initiator.** Picks a secret index i, *simulates* the chain for
   challenge i (cost: k simulations — slow but done once), and publishes
   the digest H(word_i).
3. **Holder.** *Executes* chains for the challenges in (shuffled) order —
   each at device speed — until a word's digest matches; recovers i.
4. **Shared secret.** Both sides hold (i, word_i); the key is
   H(index, word).  The eavesdropper must simulate chains until it finds
   the match: expected (m+1)/2 chains at k·T_sim each, against the
   holder's (m+1)/2 chains at k·T_exe — the ESG, amplified by k and by m.

Words must be unique across the challenge list for unambiguous matching;
setup enforces this (k bits per word makes collisions exponentially rare).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ppuf.esg import ESGModel
from repro.ppuf.feedback import run_feedback_chain
from repro.ppuf.keys import seed_challenges


@dataclass(frozen=True)
class KeyExchangeParameters:
    """Protocol sizing.

    Attributes
    ----------
    num_challenges:
        m, the public challenge-list length (the eavesdropper's search
        space multiplier).
    chain_length:
        k, feedback rounds per response word (the per-chain ESG
        amplification and the word's bit length).
    """

    num_challenges: int = 32
    chain_length: int = 16

    def __post_init__(self):
        if self.num_challenges < 2:
            raise ReproError("need at least 2 challenges")
        if self.chain_length < 8:
            raise ReproError("chains below 8 bits collide too easily")


@dataclass(frozen=True)
class ExchangeCosts:
    """Modeled time costs of one exchange at a given device size.

    All values in seconds, from the fitted ESG model's laws.  The
    initiator's single simulation is *offline* precomputation (done before
    the session, Beckmann–Potkonjak style); the online exchange is the
    holder's device-speed search, so the security margin is the
    eavesdropper-to-holder ratio.
    """

    initiator_seconds: float
    holder_seconds: float
    eavesdropper_seconds: float

    @property
    def advantage_ratio(self) -> float:
        """Eavesdropper cost over the holder's online cost.

        Equals T_sim/T_exe at the device size — the per-evaluation ESG —
        since both sides search the same expected number of chains.
        """
        return self.eavesdropper_seconds / self.holder_seconds


class KeyExchange:
    """One key-exchange context bound to a device's public model."""

    def __init__(self, ppuf, parameters: KeyExchangeParameters, seed: bytes):
        self.ppuf = ppuf
        self.parameters = parameters
        self.challenges = seed_challenges(ppuf, seed, parameters.num_challenges)
        words = [self._word(index) for index in range(parameters.num_challenges)]
        if len({word for word in words}) != len(words):
            raise ReproError(
                "response-word collision in the challenge list; "
                "use a different seed or a longer chain_length"
            )
        self._words = words

    # ------------------------------------------------------------------
    def _word(self, index: int) -> bytes:
        """The k-bit feedback-chain transcript for challenge ``index``."""
        chain = run_feedback_chain(
            self.ppuf, self.challenges[index], self.parameters.chain_length
        )
        bits = np.array([crp.response for crp in chain.rounds], dtype=np.uint8)
        return np.packbits(bits).tobytes()

    @staticmethod
    def _digest(word: bytes) -> bytes:
        return hashlib.sha256(b"ppuf-key-exchange" + word).digest()

    # ------------------------------------------------------------------
    # roles
    # ------------------------------------------------------------------
    def initiator_pick(self, rng: np.random.Generator) -> Tuple[int, bytes]:
        """Initiator: choose a secret index, publish the word digest."""
        index = int(rng.integers(self.parameters.num_challenges))
        return index, self._digest(self._words[index])

    def holder_find(self, digest: bytes, rng: np.random.Generator) -> Optional[int]:
        """Holder: execute chains in shuffled order until the digest matches.

        Returns the recovered index, or ``None`` for a digest matching no
        challenge (a corrupted or adversarial message).
        """
        order = rng.permutation(self.parameters.num_challenges)
        for index in order.tolist():
            if self._digest(self._words[index]) == digest:
                return index
        return None

    def shared_secret(self, index: int) -> bytes:
        """The agreed key: H(index, word)."""
        if not 0 <= index < self.parameters.num_challenges:
            raise ReproError(f"index {index} out of range")
        payload = index.to_bytes(4, "little") + self._words[index]
        return hashlib.sha256(b"ppuf-shared-secret" + payload).digest()

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------
    def modeled_costs(self, esg_model: ESGModel) -> ExchangeCosts:
        """Time costs under the fitted simulation/execution laws.

        The initiator simulates one chain; the holder executes an expected
        (m+1)/2 chains; the eavesdropper simulates an expected (m+1)/2
        chains.  Feedback rounds are strictly sequential on both sides.
        """
        n = self.ppuf.n
        k = self.parameters.chain_length
        m = self.parameters.num_challenges
        simulate_chain = k * float(esg_model.simulation(n))
        execute_chain = k * float(esg_model.execution(n))
        expected_tries = (m + 1) / 2.0
        return ExchangeCosts(
            initiator_seconds=simulate_chain,
            holder_seconds=expected_tries * execute_chain,
            eavesdropper_seconds=expected_tries * simulate_chain,
        )
