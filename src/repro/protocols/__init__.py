"""Public-key protocols on top of the PPUF.

The paper's introduction motivates PPUFs as a base for "multiple public-key
protocols" (citing Beckmann & Potkonjak).  This subpackage implements the
canonical one — matching-based key exchange — with explicit ESG cost
accounting, so the security margin is a computable number rather than an
assertion.
"""

from repro.protocols.key_exchange import (
    KeyExchange,
    KeyExchangeParameters,
    ExchangeCosts,
)

__all__ = ["KeyExchange", "KeyExchangeParameters", "ExchangeCosts"]
