"""Arbiter PUF baseline (Fig. 10's comparison point).

The standard additive linear delay model (Lee et al., the paper's ref [2]):
each stage contributes a delay difference depending on its challenge bit;
the response is the sign of the accumulated difference.  In the well-known
parity-feature form,

    response = sign( w . phi(c) + b ),   phi_i(c) = prod_{j >= i} (1 - 2 c_j),

which is *linearly separable* in phi — the reason model-building attacks
crack arbiter PUFs quickly, and the contrast the paper draws with its own
nonlinear response boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ChallengeError


@dataclass
class ArbiterPuf:
    """A linear-delay-model arbiter PUF.

    Parameters
    ----------
    num_stages:
        Challenge length (matched to the PPUF's l² in Fig. 10).
    rng:
        Generator used to fabricate the stage delays.
    sigma:
        Stage delay-difference spread (arbitrary units; only the sign of the
        total matters).
    """

    num_stages: int
    rng: np.random.Generator
    sigma: float = 1.0
    _weights: np.ndarray = field(default=None, repr=False)
    _bias: float = field(default=0.0, repr=False)

    def __post_init__(self):
        if self.num_stages < 1:
            raise ChallengeError(f"num_stages must be >= 1, got {self.num_stages}")
        if self.sigma <= 0:
            raise ChallengeError(f"sigma must be positive, got {self.sigma}")
        self._weights = self.rng.normal(0.0, self.sigma, size=self.num_stages)
        self._bias = float(self.rng.normal(0.0, self.sigma))

    @staticmethod
    def parity_features(challenges: np.ndarray) -> np.ndarray:
        """phi(c): suffix products of the ±1-encoded challenge bits."""
        challenges = np.atleast_2d(np.asarray(challenges))
        signs = 1.0 - 2.0 * challenges.astype(np.float64)
        # Reverse cumulative product along the stage axis.
        return np.cumprod(signs[:, ::-1], axis=1)[:, ::-1]

    def delay_difference(self, challenges: np.ndarray) -> np.ndarray:
        """Accumulated top-vs-bottom path delay difference per challenge."""
        challenges = np.atleast_2d(np.asarray(challenges))
        if challenges.shape[1] != self.num_stages:
            raise ChallengeError(
                f"challenges must have {self.num_stages} bits, "
                f"got {challenges.shape[1]}"
            )
        if not np.all((challenges == 0) | (challenges == 1)):
            raise ChallengeError("challenge bits must be 0/1")
        return self.parity_features(challenges) @ self._weights + self._bias

    def respond(self, challenges: np.ndarray) -> np.ndarray:
        """0/1 responses for a (count, num_stages) challenge matrix."""
        return (self.delay_difference(challenges) > 0).astype(np.uint8)

    def responder(self):
        """Adapter matching :func:`repro.attacks.dataset.build_attack_dataset`."""
        return self.respond
