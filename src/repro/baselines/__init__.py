"""Baseline PUFs the paper compares against."""

from repro.baselines.arbiter import ArbiterPuf

__all__ = ["ArbiterPuf"]
