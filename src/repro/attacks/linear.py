"""Primal linear ridge classifier.

The linear member of the attack suite.  Solving in the primal (a d×d
system) keeps it O(N d²) — usable at every CRP count of Fig. 10, unlike
the O(N³) kernel solve.  On the arbiter baseline's parity features this is
exactly the textbook model-building attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.errors import AttackError


@dataclass
class LinearRidgeClassifier:
    """Ridge-regularised least-squares linear classifier on ±1 labels."""

    ridge: float = 1e-6
    _weights: np.ndarray = field(default=None, repr=False)
    _bias: float = field(default=0.0, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRidgeClassifier":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise AttackError(
                f"feature/label mismatch: {x.shape[0]} rows vs {y.size} labels"
            )
        if self.ridge <= 0:
            raise AttackError("ridge must be positive")
        if np.unique(y).size < 2:
            self._weights = np.zeros(x.shape[1])
            self._bias = float(y[0])
            return self
        self._bias = float(y.mean())
        centered = y - self._bias
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        self._weights = scipy.linalg.solve(gram, x.T @ centered, assume_a="pos")
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise AttackError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return x @ self._weights + self._bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions."""
        return np.where(self.decision_function(x) >= 0, 1.0, -1.0)

    def error_rate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate on a labelled set."""
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(x) != y))
