"""CRP dataset construction for attack experiments.

Fig. 10's attacker observes full challenges — the type-A terminal selection
*and* the l² type-B control bits — plus the response bit.  Features are the
±1-encoded control word concatenated with one-hot source/sink encodings.

For the arbiter-PUF baseline, the attacker exploits the publicly known
additive delay model and learns on the standard parity features, which is
what makes arbiter PUFs fall so quickly — the contrast Fig. 10 draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import AttackError


@dataclass(frozen=True)
class AttackDataset:
    """±1 feature/label matrices split into train and test halves."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    def __post_init__(self):
        if self.train_x.shape[0] != self.train_y.size:
            raise AttackError("train feature/label size mismatch")
        if self.test_x.shape[0] != self.test_y.size:
            raise AttackError("test feature/label size mismatch")

    @property
    def num_train(self) -> int:
        return int(self.train_y.size)

    @property
    def num_test(self) -> int:
        return int(self.test_y.size)

    def truncated(self, train_count: int) -> "AttackDataset":
        """Same test set, only the first ``train_count`` training CRPs.

        Lets one response sweep serve every point of the Fig. 10 curve.
        """
        if not 0 < train_count <= self.num_train:
            raise AttackError(
                f"train_count must be in (0, {self.num_train}], got {train_count}"
            )
        return AttackDataset(
            train_x=self.train_x[:train_count],
            train_y=self.train_y[:train_count],
            test_x=self.test_x,
            test_y=self.test_y,
        )


def build_attack_dataset(
    responder: Callable[[np.ndarray], np.ndarray],
    num_bits: int,
    train_count: int,
    test_count: int,
    rng: np.random.Generator,
    *,
    feature_map: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> AttackDataset:
    """Sample random control words and label them with a responder.

    Parameters
    ----------
    responder:
        Callable mapping a (count, num_bits) 0/1 matrix to a 0/1 response
        vector.
    num_bits:
        Control-word length.
    feature_map:
        Attacker-side feature transform of the raw 0/1 words; defaults to
        the plain ±1 encoding.  The arbiter baseline passes its parity
        transform here (the attacker knows the arbiter model).
    """
    if train_count < 1 or test_count < 1:
        raise AttackError("train and test counts must be positive")
    total = train_count + test_count
    words = rng.integers(0, 2, size=(total, num_bits), dtype=np.uint8)
    responses = np.asarray(responder(words))
    if responses.shape != (total,):
        raise AttackError(
            f"responder returned shape {responses.shape}; expected ({total},)"
        )
    if feature_map is None:
        features = words.astype(np.float64) * 2.0 - 1.0
    else:
        features = np.asarray(feature_map(words), dtype=np.float64)
        if features.shape[0] != total:
            raise AttackError("feature_map changed the sample count")
    labels = responses.astype(np.float64) * 2.0 - 1.0
    return AttackDataset(
        train_x=features[:train_count],
        train_y=labels[:train_count],
        test_x=features[train_count:],
        test_y=labels[train_count:],
    )


def challenge_features(challenge, n: int) -> np.ndarray:
    """Full-challenge attack features: one-hot terminals + ±1 control word."""
    source = np.zeros(n)
    sink = np.zeros(n)
    source[challenge.source] = 1.0
    sink[challenge.sink] = 1.0
    return np.concatenate([source, sink, challenge.feature_vector()])


def build_ppuf_attack_dataset(
    ppuf,
    train_count: int,
    test_count: int,
    rng: np.random.Generator,
    *,
    engine: str = "maxflow",
    fixed_terminals: bool = False,
) -> AttackDataset:
    """Observe CRPs of a PPUF with full random challenges.

    ``fixed_terminals=True`` pins the type-A selection — the ablation that
    shows how much of the PPUF's attack resilience the varying terminals
    contribute.
    """
    if train_count < 1 or test_count < 1:
        raise AttackError("train and test counts must be positive")
    space = ppuf.challenge_space()
    total = train_count + test_count
    kwargs = {"source": 0, "sink": ppuf.n - 1} if fixed_terminals else {}
    challenges = [space.random(rng, **kwargs) for _ in range(total)]
    features = np.stack([challenge_features(c, ppuf.n) for c in challenges])
    labels = np.array(
        [ppuf.response(c, engine=engine) * 2 - 1 for c in challenges], dtype=np.float64
    )
    return AttackDataset(
        train_x=features[:train_count],
        train_y=labels[:train_count],
        test_x=features[train_count:],
        test_y=labels[train_count:],
    )
