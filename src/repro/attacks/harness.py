"""The Fig. 10 attack driver.

For each observed-CRP count, train the parametric (LS-SVM / RFF ridge) and
non-parametric (KNN over K = 1, 3, ..., 21) attackers and report the
*minimum* prediction error — exactly the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.attacks.dataset import AttackDataset
from repro.attacks.knn import KNNClassifier
from repro.attacks.linear import LinearRidgeClassifier
from repro.attacks.logistic import LogisticAttacker
from repro.attacks.lssvm import LSSVM
from repro.attacks.rff import RFFRidge
from repro.errors import AttackError

#: Training sizes above this use the RFF approximation instead of the
#: exact O(N^3) LS-SVM solve.
EXACT_SVM_LIMIT = 2500

#: The paper's KNN sweep: "a series of empirical KNN tests with K = 1, 3, ..., 21".
KNN_KS = tuple(range(1, 22, 2))


def best_prediction_error(dataset: AttackDataset, *, knn_ks: Sequence[int] = KNN_KS) -> Dict[str, float]:
    """Train every attacker on one dataset; return per-model and best error."""
    if dataset.num_train < 2:
        raise AttackError("need at least 2 training CRPs")
    errors: Dict[str, float] = {}

    if dataset.num_train <= EXACT_SVM_LIMIT:
        rbf_svm = LSSVM()
        rbf_svm.fit(dataset.train_x, dataset.train_y)
        rbf_error = rbf_svm.error_rate(dataset.test_x, dataset.test_y)
    else:
        rff = RFFRidge()
        rff.fit(dataset.train_x, dataset.train_y)
        rbf_error = rff.error_rate(dataset.test_x, dataset.test_y)
    linear = LinearRidgeClassifier()
    linear.fit(dataset.train_x, dataset.train_y)
    linear_error = linear.error_rate(dataset.test_x, dataset.test_y)
    logistic = LogisticAttacker()
    logistic.fit(dataset.train_x, dataset.train_y)
    logistic_error = logistic.error_rate(dataset.test_x, dataset.test_y)
    # The parametric attacker reports its best model.
    errors["svm"] = min(rbf_error, linear_error, logistic_error)

    knn_errors = []
    for k in knn_ks:
        if k > dataset.num_train:
            break
        knn = KNNClassifier(k=k)
        knn.fit(dataset.train_x, dataset.train_y)
        knn_errors.append(knn.error_rate(dataset.test_x, dataset.test_y))
    if knn_errors:
        errors["knn"] = min(knn_errors)

    errors["best"] = min(errors.values())
    return errors


@dataclass(frozen=True)
class AttackPoint:
    """One point of the Fig. 10 curve."""

    num_crps: int
    svm_error: float
    knn_error: float
    best_error: float


def attack_curve(
    dataset: AttackDataset,
    train_sizes: Sequence[int],
    *,
    knn_ks: Sequence[int] = KNN_KS,
) -> List[AttackPoint]:
    """Prediction error vs observed-CRP count on a shared test set."""
    points: List[AttackPoint] = []
    for size in train_sizes:
        errors = best_prediction_error(dataset.truncated(size), knn_ks=knn_ks)
        points.append(
            AttackPoint(
                num_crps=size,
                svm_error=errors.get("svm", 1.0),
                knn_error=errors.get("knn", 1.0),
                best_error=errors["best"],
            )
        )
    return points
