"""Model-building attacks (Fig. 10).

The paper attacks its PPUF with a parametric learner (SVM with an RBF
kernel — its ref [28] is the least-squares SVM) and a non-parametric one
(KNN, K = 1, 3, ..., 21), reporting the *minimum* error over all learners.
No ML library is available offline, so both are implemented from scratch:

* :class:`~repro.attacks.lssvm.LSSVM` — exact dense LS-SVM solve;
* :class:`~repro.attacks.rff.RFFRidge` — random-Fourier-feature ridge
  regression, the scalable approximation used for large CRP counts;
* :class:`~repro.attacks.knn.KNNClassifier` — vectorised KNN.
"""

from repro.attacks.kernels import rbf_kernel, linear_kernel, median_heuristic_gamma
from repro.attacks.linear import LinearRidgeClassifier
from repro.attacks.logistic import LogisticAttacker
from repro.attacks.lssvm import LSSVM
from repro.attacks.rff import RFFRidge
from repro.attacks.structural import StructuralSimulator
from repro.attacks.knn import KNNClassifier
from repro.attacks.dataset import (
    AttackDataset,
    build_attack_dataset,
    build_ppuf_attack_dataset,
    challenge_features,
)
from repro.attacks.harness import AttackPoint, attack_curve, best_prediction_error

__all__ = [
    "rbf_kernel",
    "linear_kernel",
    "median_heuristic_gamma",
    "LSSVM",
    "LinearRidgeClassifier",
    "LogisticAttacker",
    "RFFRidge",
    "StructuralSimulator",
    "KNNClassifier",
    "AttackDataset",
    "build_attack_dataset",
    "build_ppuf_attack_dataset",
    "challenge_features",
    "AttackPoint",
    "attack_curve",
    "best_prediction_error",
]
