"""Random-Fourier-feature ridge classifier (large-N LS-SVM stand-in).

Rahimi–Recht features approximate the RBF kernel:

    k(x, y) ~ z(x)^T z(y),   z(x) = sqrt(2/D) cos(W x + b),

with ``W ~ N(0, 2*gamma)`` rows and ``b ~ U[0, 2*pi)``.  Ridge regression on
z-features then approximates the LS-SVM at O(N D² + D³) cost, making the
10⁴-CRP points of Fig. 10 tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.linalg

from repro.attacks.kernels import median_heuristic_gamma
from repro.errors import AttackError


@dataclass
class RFFRidge:
    """Ridge classifier on random Fourier features of the RBF kernel.

    Parameters
    ----------
    num_features:
        D, the random feature dimension.
    ridge:
        L2 regularisation weight.
    gamma:
        RBF bandwidth; ``None`` selects the median heuristic at fit time.
    seed:
        Seed for the random projection (kept explicit for reproducibility).
    """

    num_features: int = 1024
    ridge: float = 1e-3
    gamma: Optional[float] = None
    seed: int = 0
    _weights: np.ndarray = field(default=None, repr=False)
    _projection: np.ndarray = field(default=None, repr=False)
    _phases: np.ndarray = field(default=None, repr=False)
    _bias: float = field(default=0.0, repr=False)

    def _features(self, x: np.ndarray) -> np.ndarray:
        scale = np.sqrt(2.0 / self.num_features)
        return scale * np.cos(x @ self._projection + self._phases)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RFFRidge":
        """Train on ±1-encoded features and labels."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise AttackError(
                f"feature/label mismatch: {x.shape[0]} rows vs {y.size} labels"
            )
        if self.num_features < 1:
            raise AttackError("num_features must be >= 1")
        if self.ridge <= 0:
            raise AttackError("ridge must be positive")
        if np.unique(y).size < 2:
            self._projection = np.zeros((x.shape[1], 1))
            self._phases = np.zeros(1)
            self._weights = np.zeros(1)
            self._bias = float(y[0])
            return self

        gamma = self.gamma if self.gamma is not None else median_heuristic_gamma(x)
        rng = np.random.default_rng(self.seed)
        self._projection = rng.normal(
            0.0, np.sqrt(2.0 * gamma), size=(x.shape[1], self.num_features)
        )
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self.num_features)
        z = self._features(x)
        self._bias = float(y.mean())
        gram = z.T @ z + self.ridge * np.eye(self.num_features)
        target = z.T @ (y - self._bias)
        self._weights = scipy.linalg.solve(gram, target, assume_a="pos")
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise AttackError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if self._projection.shape[1] == 1 and np.all(self._weights == 0):
            return np.full(x.shape[0], self._bias)
        return self._features(x) @ self._weights + self._bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions."""
        return np.where(self.decision_function(x) >= 0, 1.0, -1.0)

    def error_rate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate on a labelled set."""
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(x) != y))
