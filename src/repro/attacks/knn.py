"""K-nearest-neighbour classifier (the paper's non-parametric attack)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import AttackError


@dataclass
class KNNClassifier:
    """Majority vote over the K nearest training points (Euclidean).

    Ties in the vote resolve toward the single nearest neighbour's label,
    which also makes K-even values well defined.
    """

    k: int = 1
    _train_x: np.ndarray = field(default=None, repr=False)
    _train_y: np.ndarray = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise AttackError(
                f"feature/label mismatch: {x.shape[0]} rows vs {y.size} labels"
            )
        if self.k < 1:
            raise AttackError(f"k must be >= 1, got {self.k}")
        if self.k > x.shape[0]:
            raise AttackError(f"k={self.k} exceeds the training size {x.shape[0]}")
        self._train_x = x
        self._train_y = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions by majority vote."""
        if self._train_x is None:
            raise AttackError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        distances = cdist(x, self._train_x, metric="sqeuclidean")
        # argpartition picks the k smallest per row without a full sort.
        nearest = np.argpartition(distances, self.k - 1, axis=1)[:, : self.k]
        votes = self._train_y[nearest].sum(axis=1)
        rows = np.arange(x.shape[0])
        closest = np.argmin(distances, axis=1)
        tie_break = self._train_y[closest]
        predictions = np.where(votes > 0, 1.0, np.where(votes < 0, -1.0, tie_break[rows]))
        return predictions

    def error_rate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate on a labelled set."""
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(x) != y))
