"""The structural attacker: perfect predictions, unacceptable latency.

Black-box learners (Fig. 10) fail against the PPUF's nonlinear boundary —
but a PPUF's security was never about model secrecy.  The *structural*
attacker simply holds the public simulation model and answers every
challenge by solving max-flow.  Its prediction error is ~the simulation
inaccuracy (essentially zero at the bit level), which is exactly why the
protocol must be *time-bounded*: the structural attacker's per-response
latency is the simulation time that the ESG guarantees to be orders of
magnitude above the device's settling time.

:class:`StructuralSimulator` measures both sides — accuracy and latency —
so examples and benchmarks can show the complete security argument:
Fig. 10 kills the fast attackers, the ESG kills the accurate one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.errors import AttackError


@dataclass
class StructuralSimulator:
    """An attacker holding a device's public model.

    Parameters
    ----------
    ppuf:
        The victim's public model (for a PPUF this is published).
    algorithm:
        Max-flow solver the attacker uses per query.
    """

    ppuf: object
    algorithm: str = "push_relabel"
    query_seconds: List[float] = field(default_factory=list)

    def predict(self, challenge) -> int:
        """Answer one challenge by simulation, recording the latency."""
        from repro.ppuf.engines import network_current

        start = time.perf_counter()
        current_a = network_current(
            self.ppuf.network_a, challenge, "maxflow", algorithm=self.algorithm
        )
        current_b = network_current(
            self.ppuf.network_b, challenge, "maxflow", algorithm=self.algorithm
        )
        bit = self.ppuf.comparator.compare(current_a, current_b)
        self.query_seconds.append(time.perf_counter() - start)
        return bit

    def prediction_error(self, challenges, references) -> float:
        """Error against reference responses (expected ~0)."""
        references = list(references)
        if len(challenges) != len(references):
            raise AttackError("challenge/reference length mismatch")
        if not challenges:
            raise AttackError("need at least one challenge")
        wrong = sum(
            self.predict(challenge) != reference
            for challenge, reference in zip(challenges, references)
        )
        return wrong / len(challenges)

    @property
    def mean_query_seconds(self) -> float:
        """Measured per-response simulation latency."""
        if not self.query_seconds:
            raise AttackError("no queries recorded yet")
        return sum(self.query_seconds) / len(self.query_seconds)

    def latency_ratio(self, device_delay_seconds: float) -> float:
        """How many times slower than the physical device this attacker is."""
        if device_delay_seconds <= 0:
            raise AttackError("device delay must be positive")
        return self.mean_query_seconds / device_delay_seconds
