"""Kernels for the model-building attacks."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import AttackError


def linear_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Plain inner-product kernel."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    return x @ y.T


def rbf_kernel(x: np.ndarray, y: np.ndarray, gamma: float) -> np.ndarray:
    """Radial basis function kernel ``exp(-gamma * ||x - y||^2)``."""
    if gamma <= 0:
        raise AttackError(f"gamma must be positive, got {gamma}")
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    squared = cdist(x, y, metric="sqeuclidean")
    return np.exp(-gamma * squared)


def median_heuristic_gamma(x: np.ndarray, *, max_samples: int = 500, rng=None) -> float:
    """The median heuristic: gamma = 1 / median(squared pairwise distance).

    A standard parameter-free bandwidth choice; subsamples large training
    sets for tractability.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if x.shape[0] < 2:
        raise AttackError("median heuristic needs at least 2 samples")
    if x.shape[0] > max_samples:
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(x.shape[0], size=max_samples, replace=False)
        x = x[idx]
    squared = cdist(x, x, metric="sqeuclidean")
    upper = squared[np.triu_indices_from(squared, k=1)]
    median = float(np.median(upper))
    if median <= 0:
        raise AttackError("degenerate training set: zero median distance")
    return 1.0 / median
