"""Least-squares SVM classifier (Suykens & Vandewalle — the paper's [28]).

The LS-SVM replaces the SVM's inequality constraints with equalities, so
training reduces to one symmetric linear system:

    [ 0      1^T          ] [ b     ]   [ 0 ]
    [ 1   K + I / gamma_c ] [ alpha ] = [ y ]

with K the kernel matrix, gamma_c the regularisation weight and y the ±1
labels.  Prediction is ``sign(K(x, X) @ alpha + b)``.  Exact training is
O(N³); the attack harness switches to :class:`repro.attacks.rff.RFFRidge`
beyond a size threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.linalg

from repro.attacks.kernels import linear_kernel, median_heuristic_gamma, rbf_kernel
from repro.errors import AttackError


@dataclass
class LSSVM:
    """Kernel least-squares SVM.

    Parameters
    ----------
    regularization:
        gamma_c; larger fits the training set harder.
    gamma:
        RBF bandwidth; ``None`` selects the median heuristic at fit time.
    kernel:
        ``"rbf"`` (the paper's choice) or ``"linear"`` (what breaks the
        arbiter baseline's linearly separable parity representation).
    """

    regularization: float = 10.0
    gamma: Optional[float] = None
    kernel: str = "rbf"
    _train_x: np.ndarray = field(default=None, repr=False)
    _alpha: np.ndarray = field(default=None, repr=False)
    _bias: float = field(default=0.0, repr=False)
    _gamma: float = field(default=0.0, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LSSVM":
        """Train on ±1-encoded features and labels."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise AttackError(
                f"feature/label mismatch: {x.shape[0]} rows vs {y.size} labels"
            )
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise AttackError("labels must be +/-1")
        if self.regularization <= 0:
            raise AttackError("regularization must be positive")
        if np.unique(y).size < 2:
            # Degenerate training set: constant prediction.
            self._train_x = x
            self._alpha = np.zeros(x.shape[0])
            self._bias = float(y[0])
            self._gamma = 1.0
            return self

        if self.kernel not in ("rbf", "linear"):
            raise AttackError(f"unknown kernel {self.kernel!r}")
        if self.kernel == "rbf":
            self._gamma = (
                self.gamma if self.gamma is not None else median_heuristic_gamma(x)
            )
        else:
            self._gamma = 0.0
        n = x.shape[0]
        kernel = self._kernel_matrix(x, x)
        system = np.empty((n + 1, n + 1))
        system[0, 0] = 0.0
        system[0, 1:] = 1.0
        system[1:, 0] = 1.0
        system[1:, 1:] = kernel + np.eye(n) / self.regularization
        rhs = np.concatenate([[0.0], y])
        try:
            solution = scipy.linalg.solve(system, rhs, assume_a="sym")
        except scipy.linalg.LinAlgError as error:
            raise AttackError(f"LS-SVM system is singular: {error}") from error
        self._bias = float(solution[0])
        self._alpha = solution[1:]
        self._train_x = x
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._train_x is None:
            raise AttackError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if np.all(self._alpha == 0):
            return np.full(x.shape[0], self._bias)
        kernel = self._kernel_matrix(x, self._train_x)
        return kernel @ self._alpha + self._bias

    def _kernel_matrix(self, x, y):
        if self.kernel == "linear":
            return linear_kernel(x, y)
        return rbf_kernel(x, y, self._gamma)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions."""
        scores = self.decision_function(x)
        return np.where(scores >= 0, 1.0, -1.0)

    def error_rate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate on a labelled set."""
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(x) != y))
