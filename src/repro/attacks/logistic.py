"""Logistic-regression attacker.

The third parametric learner of the attack suite: L2-regularised logistic
regression trained by full-batch Newton iterations (IRLS).  Against the
arbiter PUF on parity features this is the textbook Rührmair-et-al. attack
model; against the PPUF it probes whether the response boundary has a
usable linear component the ridge classifier's squared loss might miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.errors import AttackError


@dataclass
class LogisticAttacker:
    """L2-regularised logistic regression (±1 labels, IRLS training)."""

    ridge: float = 1e-3
    max_iterations: int = 50
    tolerance: float = 1e-8
    _weights: np.ndarray = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticAttacker":
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise AttackError(
                f"feature/label mismatch: {x.shape[0]} rows vs {y.size} labels"
            )
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise AttackError("labels must be +/-1")
        if self.ridge <= 0:
            raise AttackError("ridge must be positive")

        design = np.hstack([x, np.ones((x.shape[0], 1))])
        weights = np.zeros(design.shape[1])
        if np.unique(y).size < 2:
            weights[-1] = float(y[0]) * 10.0
            self._weights = weights
            return self

        for _ in range(self.max_iterations):
            margins = y * (design @ weights)
            # sigma(-m) is both the per-sample gradient weight and the
            # misclassification probability under the model.
            sigma = 1.0 / (1.0 + np.exp(np.clip(margins, -35.0, 35.0)))
            gradient = -design.T @ (y * sigma) + self.ridge * weights
            if np.max(np.abs(gradient)) < self.tolerance:
                break
            curvature = sigma * (1.0 - sigma)
            hessian = (design * curvature[:, None]).T @ design
            hessian[np.diag_indices_from(hessian)] += self.ridge
            step = scipy.linalg.solve(hessian, gradient, assume_a="pos")
            weights = weights - step
        self._weights = weights
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise AttackError("classifier is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        return design @ self._weights

    def predict(self, x: np.ndarray) -> np.ndarray:
        """±1 predictions."""
        return np.where(self.decision_function(x) >= 0, 1.0, -1.0)

    def error_rate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Misclassification rate on a labelled set."""
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(x) != y))
