"""Bias balancing for the dual-stack edge block (Fig. 3b).

Requirement 3 demands that the *nominal* saturation currents for challenge
bit 0 and bit 1 be equal, while the current is limited by a *different*
transistor stack in each case.  With the bias budget ``Vgs0 + Vgs1 = Vc``,
the block's saturation current as a function of Vgs0 is

    Isat_block(Vgs0) = min( Isat_stack(Vgs0), Isat_stack(Vc - Vgs0) ),

a tent-shaped curve peaking near Vc/2.  Any bit-1 bias below the peak has a
matching bit-0 bias above it with the same nominal current;
:func:`balance_bias` finds it.  The paper's quoted pair (0.5 V, 0.67 V) is
the result of this calibration on its SPICE model; ours lands close, and
the experiment script reports both.
"""

from __future__ import annotations

from scipy.optimize import brentq

from repro.circuit.devices.stack import stack_saturation_current
from repro.circuit.ptm32 import OperatingConditions, Technology
from repro.errors import DeviceError


def block_saturation_current(
    vgs0: float,
    tech: Technology,
    conditions: OperatingConditions,
) -> float:
    """Nominal saturation current of the dual-stack block at gate bias vgs0."""
    if not 0 < vgs0 < conditions.v_c:
        raise DeviceError(f"vgs0 must be inside (0, {conditions.v_c}), got {vgs0}")
    isat_a = float(stack_saturation_current(vgs0, tech, sd_levels=2))
    isat_b = float(stack_saturation_current(conditions.v_c - vgs0, tech, sd_levels=2))
    return min(isat_a, isat_b)


def balance_bias(
    tech: Technology,
    conditions: OperatingConditions,
    *,
    vgs_bit1: float = None,
) -> float:
    """Find the bit-0 bias giving the same nominal current as the bit-1 bias.

    Parameters
    ----------
    vgs_bit1:
        The bit-1 gate bias (defaults to the one in ``conditions``).  Must
        lie below the tent peak at Vc/2 so a distinct balanced partner
        exists on the other side.

    Returns
    -------
    float
        ``vgs_bit0`` such that ``Isat_block(vgs_bit0) == Isat_block(vgs_bit1)``
        with ``vgs_bit0 > Vc/2``.
    """
    if vgs_bit1 is None:
        vgs_bit1 = conditions.vgs_bit1
    half = conditions.v_c / 2.0
    if not 0 < vgs_bit1 < half:
        raise DeviceError(
            f"vgs_bit1 must lie below the tent peak Vc/2 = {half}, got {vgs_bit1}"
        )
    target = block_saturation_current(vgs_bit1, tech, conditions)

    def mismatch(vgs0: float) -> float:
        return block_saturation_current(vgs0, tech, conditions) - target

    # On (half, Vc - eps) the block current decreases from its peak down to
    # ~0, crossing the target exactly once.
    lo = half + 1e-6
    hi = conditions.v_c - 1e-6
    if mismatch(lo) < 0:
        raise DeviceError("tent peak below target current; biases inconsistent")
    return float(brentq(mismatch, lo, hi, xtol=1e-9))
