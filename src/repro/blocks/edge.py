"""The production edge block (Fig. 2d).

One directed edge of the complete graph is instantiated by:

    anode diode -> stack(Vgs0) -> stack(Vgs1) -> cathode diode

where the two two-level-SD transistor stacks are biased complementarily
(``Vgs0 + Vgs1 = Vc``).  The challenge bit selects which of the two bias
assignments is applied (Requirement 3: the limiting device differs between
bit values, so knowing the current for bit 0 reveals nothing about bit 1).

This module provides both vectorised edge-population functions (used by the
network solver and the max-flow capacity extraction) and a scalar
:class:`EdgeBlock` object for calibration and sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.devices.diode import diode_voltage
from repro.circuit.devices.stack import stack_voltage, stack_saturation_current
from repro.circuit.ptm32 import (
    CAPACITY_REFERENCE_VOLTAGE,
    OperatingConditions,
    Technology,
)
from repro.circuit.variation import M1_TOP, M2_BOTTOM, M3_TOP, M4_BOTTOM, VariationSample
from repro.errors import ChallengeError, DeviceError


def _gate_biases_for_bits(bits: np.ndarray, conditions: OperatingConditions):
    """Per-edge (vgs0, vgs1) column vectors from challenge bits."""
    bits = np.asarray(bits)
    if not np.all((bits == 0) | (bits == 1)):
        raise ChallengeError("challenge bits must be 0 or 1")
    vgs0 = np.where(bits == 1, conditions.vgs_bit1, conditions.vgs_bit0)
    vgs1 = conditions.v_c - vgs0
    return vgs0, vgs1


def edge_voltage(
    current,
    bits,
    sample: VariationSample,
    tech: Technology,
    conditions: OperatingConditions,
):
    """Voltage across each edge block carrying ``current``.

    Broadcasts: ``current`` may be shaped ``(edges, k)`` against per-edge
    parameter columns, or ``(edges,)`` for a single operating point per edge.
    """
    current = np.asarray(current, dtype=np.float64)
    vgs0, vgs1 = _gate_biases_for_bits(bits, conditions)
    if current.ndim == 2:
        vgs0 = vgs0[:, None]
        vgs1 = vgs1[:, None]
        dvt = {k: sample.total(k)[:, None] for k in (M1_TOP, M2_BOTTOM, M3_TOP, M4_BOTTOM)}
    else:
        dvt = {k: sample.total(k) for k in (M1_TOP, M2_BOTTOM, M3_TOP, M4_BOTTOM)}

    v = 2.0 * diode_voltage(current, tech, conditions.temperature)
    v = v + stack_voltage(
        current,
        vgs0,
        tech,
        sd_levels=2,
        v_b=conditions.v_b,
        delta_vt_bottom=dvt[M2_BOTTOM],
        delta_vt_top=dvt[M1_TOP],
    )
    v = v + stack_voltage(
        current,
        vgs1,
        tech,
        sd_levels=2,
        v_b=conditions.v_b,
        delta_vt_bottom=dvt[M4_BOTTOM],
        delta_vt_top=dvt[M3_TOP],
    )
    return v


def edge_saturation_scale(
    bits,
    sample: VariationSample,
    tech: Technology,
    conditions: OperatingConditions,
) -> np.ndarray:
    """Rough per-edge current scale: the smaller stack saturation current.

    Used to size per-edge current grids; *not* the capacity definition (see
    :func:`edge_currents_at_voltage` for that).
    """
    vgs0, vgs1 = _gate_biases_for_bits(bits, conditions)
    isat_a = stack_saturation_current(
        vgs0, tech, sd_levels=2, delta_vt_bottom=sample.total(M2_BOTTOM)
    )
    isat_b = stack_saturation_current(
        vgs1, tech, sd_levels=2, delta_vt_bottom=sample.total(M4_BOTTOM)
    )
    return np.minimum(isat_a, isat_b)


def edge_currents_at_voltage(
    voltage: float,
    bits,
    sample: VariationSample,
    tech: Technology,
    conditions: OperatingConditions,
    *,
    iterations: int = 60,
) -> np.ndarray:
    """Per-edge current at a common applied voltage (vectorised bisection).

    This *is* the public simulation model's capacity extraction when called
    at :data:`~repro.circuit.ptm32.CAPACITY_REFERENCE_VOLTAGE`: the paper's
    verifier knows each block's characteristics (the PPUF is public) and
    derives edge capacities from them.
    """
    if voltage < 0:
        raise DeviceError(f"edge voltage must be non-negative, got {voltage}")
    num_edges = sample.num_edges
    if voltage == 0:
        return np.zeros(num_edges)

    lo = np.zeros(num_edges)
    hi = edge_saturation_scale(bits, sample, tech, conditions) * 1.5 + 1e-12
    # Expand brackets where V(hi) has not yet reached the target.
    for _ in range(200):
        v_hi = edge_voltage(hi, bits, sample, tech, conditions)
        short = v_hi < voltage
        if not np.any(short):
            break
        hi = np.where(short, hi * 2.0, hi)
    else:
        raise DeviceError("failed to bracket edge operating points")

    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        v_mid = edge_voltage(mid, bits, sample, tech, conditions)
        below = v_mid < voltage
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
    return 0.5 * (lo + hi)


def edge_capacities(
    bits,
    sample: VariationSample,
    tech: Technology,
    conditions: OperatingConditions,
    *,
    reference_voltage: float = CAPACITY_REFERENCE_VOLTAGE,
) -> np.ndarray:
    """Edge capacities of the public max-flow simulation model."""
    return edge_currents_at_voltage(reference_voltage, bits, sample, tech, conditions)


@dataclass(frozen=True)
class EdgeBlock:
    """A single edge block at fixed bias — the scalar/sweep interface.

    Parameters
    ----------
    tech, conditions:
        Technology card and operating point.
    bit:
        Challenge bit applied to the block.
    delta_vt:
        Length-4 threshold shifts (M1, M2, M3, M4); zeros for nominal.
    """

    tech: Technology
    conditions: OperatingConditions
    bit: int = 1
    delta_vt: tuple = (0.0, 0.0, 0.0, 0.0)

    def _sample(self) -> VariationSample:
        return VariationSample(
            delta_vt=np.asarray(self.delta_vt, dtype=np.float64)[None, :],
            systematic=np.zeros(1),
        )

    def voltage(self, current: float) -> float:
        """V(I) across the block."""
        value = edge_voltage(
            np.asarray([current]),
            np.asarray([self.bit]),
            self._sample(),
            self.tech,
            self.conditions,
        )
        return float(value[0])

    def current(self, voltage: float) -> float:
        """I(V) through the block."""
        value = edge_currents_at_voltage(
            voltage,
            np.asarray([self.bit]),
            self._sample(),
            self.tech,
            self.conditions,
        )
        return float(value[0])

    def capacity(self, reference_voltage: float = CAPACITY_REFERENCE_VOLTAGE) -> float:
        """Simulation-model capacity of the block."""
        return self.current(reference_voltage)
