"""I–V sweep utilities for Fig. 3.

Fig. 3a compares the saturation behaviour of the three block designs;
Fig. 3b plots the block saturation current against the control voltage Vgs0.
Both are plain data-series producers so the benchmark harness and the
examples can print or plot them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.blocks.calibration import block_saturation_current
from repro.blocks.designs import DESIGN_LEVELS, build_design
from repro.circuit.ptm32 import OperatingConditions, Technology
from repro.errors import DeviceError


@dataclass(frozen=True)
class IVCurve:
    """An I–V data series: applied block voltage vs resulting current."""

    label: str
    voltages: np.ndarray
    currents: np.ndarray

    def saturation_flatness(self, v_low: float = 0.8, v_high: float = 1.6) -> float:
        """Relative current change across the saturated region.

        Lower is flatter; the metric Fig. 3a illustrates qualitatively.
        """
        i_low = float(np.interp(v_low, self.voltages, self.currents))
        i_high = float(np.interp(v_high, self.voltages, self.currents))
        if i_high <= 0:
            raise DeviceError("curve carries no current in the comparison window")
        return abs(i_high - i_low) / i_high


def iv_sweep(
    design_name: str,
    tech: Technology,
    conditions: OperatingConditions,
    *,
    v_max: float = 2.0,
    points: int = 101,
    gate_bias: float = None,
) -> IVCurve:
    """Sweep one block design's I–V curve (Fig. 3a data)."""
    if points < 2:
        raise DeviceError(f"need at least 2 sweep points, got {points}")
    design = build_design(design_name, tech, conditions, gate_bias=gate_bias)
    voltages = np.linspace(0.0, v_max, points)
    currents = np.array([design.current(v) for v in voltages])
    return IVCurve(label=design_name, voltages=voltages, currents=currents)


def iv_sweep_all(
    tech: Technology,
    conditions: OperatingConditions,
    *,
    v_max: float = 2.0,
    points: int = 101,
) -> Dict[str, IVCurve]:
    """All three design variants on a shared voltage sweep."""
    return {
        name: iv_sweep(name, tech, conditions, v_max=v_max, points=points)
        for name in DESIGN_LEVELS
    }


def isat_vs_gate_bias(
    tech: Technology,
    conditions: OperatingConditions,
    *,
    biases: Sequence[float] = None,
):
    """Block saturation current vs Vgs0 (Fig. 3b data).

    Returns ``(biases, currents)`` arrays covering the tent-shaped curve
    ``min(Isat(Vgs0), Isat(Vc - Vgs0))``.
    """
    if biases is None:
        biases = np.linspace(0.3, conditions.v_c - 0.3, 61)
    biases = np.asarray(biases, dtype=np.float64)
    currents = np.array(
        [block_saturation_current(b, tech, conditions) for b in biases]
    )
    return biases, currents
