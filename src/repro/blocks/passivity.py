"""Incremental-passivity verification.

A memoryless one-port is incrementally passive when its current is a
monotonically non-decreasing function of its voltage.  The paper leans on
this property twice: it guarantees a unique steady state, and it makes the
steady-state source current the max-flow optimum.  Our blocks satisfy it by
construction (sums of strictly increasing V(I) elements); this module checks
it numerically so the property is *tested*, not assumed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError


def is_incrementally_passive(
    current_of_voltage,
    *,
    v_min: float = -0.5,
    v_max: float = 2.5,
    points: int = 200,
    tolerance: float = 0.0,
) -> bool:
    """Check monotonicity of a block's I(V) over a voltage window.

    Parameters
    ----------
    current_of_voltage:
        Callable ``I(V)`` for a single block (e.g. ``EdgeBlock.current`` or
        ``BlockDesign.current``); negative voltages must yield 0 current.
    tolerance:
        Permitted *decrease* between consecutive samples, as an absolute
        current [A]; 0 requires strict non-decrease.

    Returns
    -------
    bool
        True when no consecutive sample pair decreases by more than the
        tolerance.
    """
    if points < 3:
        raise DeviceError(f"need at least 3 sample points, got {points}")
    if v_min >= v_max:
        raise DeviceError("v_min must be below v_max")
    voltages = np.linspace(v_min, v_max, points)
    currents = np.array([current_of_voltage(max(v, 0.0)) if v < 0 else current_of_voltage(v) for v in voltages])
    # Negative applied voltage must not conduct (reverse diode).
    reverse = currents[voltages < 0]
    if np.any(reverse > tolerance):
        return False
    decreases = np.diff(currents)
    return bool(np.all(decreases >= -tolerance))


def passivity_margin(current_of_voltage, *, v_min: float = 0.0, v_max: float = 2.5, points: int = 200) -> float:
    """Worst-case slope [A/V] of I(V) over a window (negative = violation)."""
    if points < 3:
        raise DeviceError(f"need at least 3 sample points, got {points}")
    voltages = np.linspace(v_min, v_max, points)
    currents = np.array([current_of_voltage(v) for v in voltages])
    slopes = np.diff(currents) / np.diff(voltages)
    return float(slopes.min())
