"""Design evolution of the basic building block (Fig. 2a–c).

Three variants trace the paper's Requirement-1/Requirement-2 narrative:

* ``"bare"`` (Fig. 2a) — diode-bounded transistor; the saturation current is
  controllable but drifts with Vds through channel-length modulation.
* ``"sd1"`` (Fig. 2b) — one resistor of source degeneration; drift reduced.
* ``"sd2"`` (Fig. 2c) — nested (cascode) degeneration with the Vb level
  shift; drift suppressed enough that process variation dominates by ~two
  orders of magnitude.

Each design is a diode–stack–diode series block with a single gate control,
i.e. *half* of the production edge block (Fig. 2d adds the complementary
stack — see :mod:`repro.blocks.edge`).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.circuit.devices.diode import diode_voltage
from repro.circuit.devices.stack import SeriesStack, stack_saturation_current
from repro.circuit.ptm32 import OperatingConditions, Technology
from repro.errors import DeviceError

#: Design name -> number of source-degeneration levels.
DESIGN_LEVELS = {"bare": 0, "sd1": 1, "sd2": 2}


@dataclass(frozen=True)
class BlockDesign:
    """A diode-bounded single-stack block of a given SD level."""

    name: str
    tech: Technology
    conditions: OperatingConditions
    gate_bias: float
    delta_vt_bottom: float = 0.0
    delta_vt_top: float = 0.0

    @property
    def sd_levels(self) -> int:
        return DESIGN_LEVELS[self.name]

    def _stack(self) -> SeriesStack:
        return SeriesStack(
            tech=self.tech,
            gate_bias=self.gate_bias,
            sd_levels=self.sd_levels,
            v_b=self.conditions.v_b,
            delta_vt_bottom=self.delta_vt_bottom,
            delta_vt_top=self.delta_vt_top,
        )

    def voltage(self, current: float) -> float:
        """V(I) across diodes + stack."""
        if current < 0:
            raise DeviceError("block current must be non-negative")
        stack = self._stack()
        diodes = 2.0 * float(
            diode_voltage(current, self.tech, self.conditions.temperature)
        )
        return diodes + stack.voltage(current)

    def current(self, voltage: float) -> float:
        """I(V) through the block (Brent inversion of the monotone V(I))."""
        if voltage <= 0:
            return 0.0
        hi = self.saturation_current() * 1.5 + 1e-12
        for _ in range(200):
            if self.voltage(hi) >= voltage:
                break
            hi *= 2.0
        else:
            raise DeviceError("could not bracket the block operating point")
        return float(brentq(lambda i: self.voltage(i) - voltage, 0.0, hi, xtol=1e-18))

    def saturation_current(self) -> float:
        """Self-consistent saturation current of the limiting stack."""
        return float(
            stack_saturation_current(
                self.gate_bias,
                self.tech,
                sd_levels=self.sd_levels,
                delta_vt_bottom=self.delta_vt_bottom,
            )
        )

    def saturation_drift(self, v_low: float, v_high: float) -> float:
        """Current change across a block-voltage window — the SCE figure.

        The quantity Requirement 2 compares against process variation:
        ``|I(v_high) - I(v_low)|`` once the block is saturated.
        """
        if not 0 < v_low < v_high:
            raise DeviceError("need 0 < v_low < v_high")
        return abs(self.current(v_high) - self.current(v_low))


def build_design(
    name: str,
    tech: Technology,
    conditions: OperatingConditions,
    *,
    gate_bias: float = None,
    delta_vt_bottom: float = 0.0,
    delta_vt_top: float = 0.0,
) -> BlockDesign:
    """Factory for a named design variant (``"bare"``, ``"sd1"``, ``"sd2"``)."""
    if name not in DESIGN_LEVELS:
        known = ", ".join(sorted(DESIGN_LEVELS))
        raise DeviceError(f"unknown block design {name!r}; expected one of {known}")
    if gate_bias is None:
        gate_bias = conditions.vgs_bit1
    return BlockDesign(
        name=name,
        tech=tech,
        conditions=conditions,
        gate_bias=gate_bias,
        delta_vt_bottom=delta_vt_bottom,
        delta_vt_top=delta_vt_top,
    )
