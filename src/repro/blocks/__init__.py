"""PPUF basic building blocks (Fig. 2 of the paper).

:mod:`repro.blocks.designs` — the design-evolution variants (a)–(c);
:mod:`repro.blocks.edge` — the production dual-stack edge block (d);
:mod:`repro.blocks.calibration` — equal-nominal-current bias balancing;
:mod:`repro.blocks.iv` — I–V sweep utilities for Fig. 3;
:mod:`repro.blocks.passivity` — incremental-passivity verification.
"""

from repro.blocks.designs import BlockDesign, build_design
from repro.blocks.edge import EdgeBlock, edge_voltage, edge_currents_at_voltage
from repro.blocks.calibration import balance_bias
from repro.blocks.iv import iv_sweep, isat_vs_gate_bias
from repro.blocks.passivity import is_incrementally_passive

__all__ = [
    "BlockDesign",
    "build_design",
    "EdgeBlock",
    "edge_voltage",
    "edge_currents_at_voltage",
    "balance_bias",
    "iv_sweep",
    "isat_vs_gate_bias",
    "is_incrementally_passive",
]
