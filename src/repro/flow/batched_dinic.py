"""Vectorised blocking-flow Dinic over batched ``(B, E)`` edge arrays.

The dense lockstep solver (:mod:`repro.flow.batched`) advances Edmonds–Karp
over a ``(B, n, n)`` residual stack: one augmenting path per instance per
round, each round paying a full dense BFS.  Dinic's level-synchronous
structure vectorises better: a phase is one batched BFS that labels every
instance's level graph, followed by a *blocking flow* found by a lockstep
depth-first scan in which every step advances all live instances at once
with a handful of ``(A, max_degree)`` gathers — no Python loop ever walks
edges or instances, only phases, BFS waves and DFS steps.

State lives in edge arrays, not matrices.  An instance's residual is one
row of a ``(B, 2E + 1)`` table over the shared :class:`~repro.flow.csr.
CsrTopology` arcs — forward arcs ``[0, E)`` carry the per-challenge
capacities, reverse arcs ``[E, 2E)`` start at zero, and the trailing
sentinel column stays zero so the padded adjacency rows need no masking
logic of their own.  For the complete crossbar graphs of the PPUF this is
the same memory as the dense stack, but the win is algorithmic (complete
graphs have two-level BFS trees, so phases are few and shallow) and
architectural: the capacity table is selected straight from a compiled
device's ``cap0``/``cap1`` rows with no ``(B, n, n)`` materialisation.

Determinism: arc scans pick the first admissible arc in CSR order (ties
toward the lowest head index), per-instance arithmetic never couples
instances, and every augmentation saturates its bottleneck arc exactly
(IEEE ``x - x == 0.0``).  Results are therefore bitwise independent of how
a workload is chunked into batches, and exact in the same sense as the
sequential solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.flow.csr import CsrTopology, segment_reduce, topology_from_matrix
from repro.flow.registry import register_solver


@dataclass
class EdgeFlowResult:
    """Outcome of a batched edge-array max-flow computation.

    Attributes
    ----------
    values:
        ``(B,)`` max-flow values, one per instance.
    flows:
        ``(B, E)`` per-forward-edge flows in the topology's edge order.
    residual:
        ``(B, 2E + 1)`` final residual arc table (forward arcs, reverse
        arcs, sentinel column — see the module docstring).
    stats:
        Aggregate operation counts: ``phases`` (per-instance BFS/blocking
        phases), ``augmentations``, ``bfs_edge_visits`` and ``dfs_steps``
        (lockstep scan steps summed over live instances).
    """

    values: np.ndarray
    flows: np.ndarray
    residual: np.ndarray
    stats: Dict[str, int] = field(default_factory=dict)


def batched_dinic_edges(
    topology: CsrTopology,
    capacities: np.ndarray,
    sources: np.ndarray,
    sinks: np.ndarray,
    *,
    residual_out: np.ndarray = None,
) -> EdgeFlowResult:
    """Solve ``B`` max-flow instances sharing one topology, in lockstep.

    Parameters
    ----------
    topology:
        The shared :class:`~repro.flow.csr.CsrTopology`.
    capacities:
        ``(B, E)`` non-negative per-forward-edge capacities.
    sources, sinks:
        Integer arrays of length ``B`` (or scalars, broadcast); per-instance
        terminals, each pair distinct.
    residual_out:
        Optional preallocated C-contiguous float64 ``(B, 2E + 1)`` buffer
        for the residual arc table (one allocation across many batches).
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    if capacities.ndim != 2:
        raise GraphError(
            f"edge capacities must have shape (B, E), got {capacities.shape}"
        )
    batch, edges = capacities.shape
    if edges != topology.num_edges:
        raise GraphError(
            f"capacity table has {edges} edges but the topology has "
            f"{topology.num_edges}"
        )
    if np.any(capacities < 0):
        raise GraphError("capacities must be non-negative")
    n = topology.n
    sources = np.broadcast_to(np.asarray(sources, dtype=np.int64), (batch,)).copy()
    sinks = np.broadcast_to(np.asarray(sinks, dtype=np.int64), (batch,)).copy()
    for terminals in (sources, sinks):
        if terminals.size and (terminals.min() < 0 or terminals.max() >= n):
            raise GraphError(f"terminal index out of range [0, {n})")
    if np.any(sources == sinks):
        raise GraphError("source and sink must differ in every instance")

    width = 2 * edges + 1
    if residual_out is None:
        residual = np.zeros((batch, width), dtype=np.float64)
    else:
        if residual_out.shape != (batch, width) or residual_out.dtype != np.float64:
            raise GraphError(
                f"residual_out must be a float64 buffer of shape "
                f"({batch}, {width}), got {residual_out.dtype} {residual_out.shape}"
            )
        if not residual_out.flags.c_contiguous:
            raise GraphError(
                "residual_out must be C-contiguous; a strided or transposed "
                "view would silently slow every vectorised arc operation"
            )
        residual_out[...] = 0.0
        residual = residual_out
    residual[:, :edges] = capacities

    stats = {"phases": 0, "augmentations": 0, "bfs_edge_visits": 0, "dfs_steps": 0}
    if edges == 0 or batch == 0:
        return EdgeFlowResult(
            values=np.zeros(batch, dtype=np.float64),
            flows=np.zeros((batch, edges), dtype=np.float64),
            residual=residual,
            stats=stats,
        )

    active = np.ones(batch, dtype=bool)
    while active.any():
        idx = np.nonzero(active)[0]
        stats["phases"] += int(idx.size)
        level, reached, visits = _batched_levels(
            residual, idx, sources[idx], sinks[idx], topology
        )
        stats["bfs_edge_visits"] += visits
        # Instances whose sink fell off the level graph hold a maximum flow.
        active[idx[~reached]] = False
        if not reached.any():
            continue
        live = idx[reached]
        augmentations, steps = _blocking_flow(
            residual, live, level[reached], sources[live], sinks[live], topology
        )
        stats["augmentations"] += augmentations
        stats["dfs_steps"] += steps

    flows = np.clip(capacities - residual[:, :edges], 0.0, capacities)
    out_sum, in_sum = topology.edge_sums(flows)
    rows = np.arange(batch)
    values = out_sum[rows, sources] - in_sum[rows, sources]
    return EdgeFlowResult(values=values, flows=flows, residual=residual, stats=stats)


def _batched_levels(residual, rows, sources, sinks, topology):
    """Level-synchronous batched BFS over positive-residual arcs.

    Returns ``(level, reached, visits)``: an ``(A, n + 1)`` level table
    (-1 unvisited; the trailing column backs the padded-row sentinel), a
    per-instance sink-reached flag, and the arc-visit count.  Instances
    stop expanding the wavefront once their sink is levelled — deeper
    vertices can never sit on a shortest augmenting path.
    """
    count = rows.size
    n = topology.n
    ar = np.arange(count)
    level = np.full((count, n + 1), -1, dtype=np.int64)
    level[ar, sources] = 0
    frontier = np.zeros((count, n), dtype=bool)
    frontier[ar, sources] = True
    # Residual state is frozen for the whole BFS: gather the open-arc mask
    # once, in in-CSR order, instead of per wave.
    arc_open = residual[rows[:, None], topology.in_order[None, :]] > 0.0
    sink_found = np.zeros(count, dtype=bool)
    depth = 0
    visits = 0
    while True:
        visits += int(np.count_nonzero(frontier.any(axis=1))) * topology.num_arcs
        candidates = frontier[:, topology.in_tail] & arc_open
        fresh = segment_reduce(np.logical_or, candidates, topology.in_ptr, empty=False)
        fresh &= level[:, :n] < 0
        fresh[sink_found] = False
        if not fresh.any():
            break
        depth += 1
        level[:, :n][fresh] = depth
        sink_found |= fresh[ar, sinks]
        frontier = fresh
    return level, sink_found, visits


def _blocking_flow(residual, live, level, sources, sinks, topology):
    """Saturate one blocking flow per live instance, in lockstep.

    ``live`` indexes rows of the full residual table; ``level``/``sources``/
    ``sinks`` are aligned with it.  Instances are split by their sink's
    level: depth-1 and depth-2 level graphs — the overwhelmingly common
    phases on the PPUF's complete crossbar graphs — admit a closed-form
    blocking flow (every augmenting path is ``s -> t`` or ``s -> v -> t``
    and the per-middle channels are arc-disjoint, so one saturating push
    per channel blocks the phase) computed with a handful of whole-group
    array operations.  Deeper level graphs fall back to the generic
    lockstep DFS of :func:`_lockstep_dfs`.
    """
    rows = np.arange(live.size)
    sink_level = level[rows, sinks]
    augmentations = 0
    steps = 0

    direct = sink_level == 1
    if direct.any():
        augmentations += _push_depth1(
            residual, live[direct], sources[direct], sinks[direct], topology
        )
    middle = sink_level == 2
    if middle.any():
        augmentations += _push_depth2(
            residual,
            live[middle],
            level[middle],
            sources[middle],
            sinks[middle],
            topology,
        )
    deep = sink_level >= 3
    if deep.any():
        deep_augment, steps = _lockstep_dfs(
            residual, live[deep], level[deep], sources[deep], sinks[deep], topology
        )
        augmentations += deep_augment
    return augmentations, steps


def _arc_partners(arcs, num_edges):
    """Residual partner of each arc; missing arcs (-1) stay on the sentinel."""
    return np.where(
        arcs < 0, -1, np.where(arcs < num_edges, arcs + num_edges, arcs - num_edges)
    )


def _push_depth1(residual, instance_rows, sources, sinks, topology):
    """Blocking flow for depth-1 level graphs: saturate every ``s -> t`` arc.

    Up to two arcs run source to sink (the forward edge and the residual
    reverse of the opposite edge); zeroing both blocks every admissible
    path.  Missing arcs index the sentinel column, whose residual is
    pinned at zero, so no masking is needed.
    """
    num_edges = topology.num_edges
    pushed = 0
    for lookup in (topology.pair_arc1, topology.pair_arc2):
        arcs = lookup[sources, sinks]
        amount = residual[instance_rows, arcs].copy()
        residual[instance_rows, arcs] = 0.0
        residual[instance_rows, _arc_partners(arcs, num_edges)] += amount
        pushed += int(np.count_nonzero(amount > 0.0))
    return pushed


def _push_depth2(residual, instance_rows, level, sources, sinks, topology):
    """Blocking flow for depth-2 level graphs, one push per middle vertex.

    Every admissible path is ``s -> v -> t`` with a distinct level-1
    middle ``v``, and channels through different middles share no arcs.
    Pushing ``min(residual(s, v), residual(v, t))`` through each channel
    therefore saturates one side of every channel at once — a blocking
    flow in O(1) lockstep operations over a ``(G, n)`` table.  Within a
    channel side the push is split across its (at most two) arcs in CSR
    order, mirroring the scan order of the generic DFS.
    """
    n = topology.n
    num_edges = topology.num_edges
    rows = instance_rows[:, None]
    side_a_1 = topology.pair_arc1[sources]        # (G, n): arcs s -> v
    side_a_2 = topology.pair_arc2[sources]
    side_b_1 = topology.pair_arc1.T[sinks]        # (G, n): arcs v -> t
    side_b_2 = topology.pair_arc2.T[sinks]

    res_a_1 = residual[rows, side_a_1]
    res_a_2 = residual[rows, side_a_2]
    res_b_1 = residual[rows, side_b_1]
    res_b_2 = residual[rows, side_b_2]
    push = np.minimum(res_a_1 + res_a_2, res_b_1 + res_b_2)
    # Only level-1 middles sit on admissible paths (this excludes the
    # terminals themselves: level(s) = 0, level(t) = 2).
    push *= level[:, :n] == 1

    for first, second, res_first, res_second in (
        (side_a_1, side_a_2, res_a_1, res_a_2),
        (side_b_1, side_b_2, res_b_1, res_b_2),
    ):
        take_first = np.minimum(push, res_first)
        take_second = np.minimum(push - take_first, res_second)
        residual[rows, first] -= take_first
        residual[rows, _arc_partners(first, num_edges)] += take_first
        residual[rows, second] -= take_second
        residual[rows, _arc_partners(second, num_edges)] += take_second
    return int(np.count_nonzero(push > 0.0))


def _lockstep_dfs(residual, live, level, sources, sinks, topology):
    """Generic lockstep blocking flow for level graphs of depth >= 3.

    The per-phase search state is one boolean table: ``adm_pad[l, u, k]``
    says arc ``k`` of vertex ``u``'s padded row is open (positive
    residual) and downhill (level rises by exactly one) for instance
    ``l``.  Partner arcs point uphill and can never become admissible
    within a phase, so the table only loses entries — augmentations clear
    the arcs they saturate.  Each lockstep step advances every instance's
    DFS by one move: extend along the first admissible arc whose head is
    not blocked, or block the dead-end vertex for the rest of the phase
    and retreat.  Instances that reach their sink augment immediately and
    restart from the source; an instance leaves the phase when its source
    itself blocks.
    """
    count = live.size
    n = topology.n

    open_arc = residual[live] > 0.0  # (L, 2E + 1); sentinel column stays False
    downhill = np.zeros_like(open_arc)
    downhill[:, : topology.num_arcs] = (
        level[:, topology.arc_head] == level[:, topology.arc_tail] + 1
    )
    adm_pad = (open_arc & downhill)[:, topology.pad_arc]  # (L, n, max_degree)
    blocked = np.zeros((count, n + 1), dtype=bool)
    blocked[:, n] = True  # the padded-row sentinel head

    depth = np.zeros(count, dtype=np.int64)
    stack_v = np.zeros((count, n + 1), dtype=np.int64)
    stack_v[:, 0] = sources
    stack_a = np.zeros((count, n + 1), dtype=np.int64)
    working = np.ones(count, dtype=bool)
    augmentations = 0
    steps = 0

    while working.any():
        rows = np.nonzero(working)[0]
        steps += int(rows.size)
        top = stack_v[rows, depth[rows]]
        candidates = adm_pad[rows, top] & ~blocked[rows[:, None], topology.pad_head[top]]
        slot = np.argmax(candidates, axis=1)
        advancing = candidates[np.arange(rows.size), slot]

        forward = rows[advancing]
        if forward.size:
            tail = top[advancing]
            chosen = slot[advancing]
            arc = topology.pad_arc[tail, chosen]
            head = topology.pad_head[tail, chosen]
            new_depth = depth[forward] + 1
            depth[forward] = new_depth
            stack_v[forward, new_depth] = head
            stack_a[forward, new_depth] = arc
            arrived = head == sinks[forward]
            if arrived.any():
                hits = forward[arrived]
                augmentations += int(hits.size)
                _augment_stacks(residual, live, hits, stack_a, depth, topology, adm_pad)
                depth[hits] = 0

        stuck = rows[~advancing]
        if stuck.size:
            blocked[stuck, top[~advancing]] = True
            exhausted = depth[stuck] == 0
            working[stuck[exhausted]] = False
            retreating = stuck[~exhausted]
            if retreating.size:
                depth[retreating] -= 1
    return augmentations, steps


def _augment_stacks(residual, live, hits, stack_a, depth, topology, adm_pad):
    """Push each hitting instance's bottleneck along its stacked path.

    Paths have different lengths; a position mask flattens the ragged
    ``(H, max_len)`` arc block so both the forward subtraction and the
    reverse-arc addition are single scatter operations.  Within one path
    all arcs are distinct and never paired with each other (levels rise
    strictly along it), and instances write disjoint rows, so the fancy
    index updates cannot collide.  Saturated arcs are cleared from the
    phase's admissibility table in the same sweep.
    """
    num_edges = topology.num_edges
    lengths = depth[hits]
    max_len = int(lengths.max())
    on_path = np.arange(1, max_len + 1)[None, :] <= lengths[:, None]
    arcs = stack_a[hits, 1 : max_len + 1]
    instance_rows = live[hits]
    along = residual[instance_rows[:, None], arcs]
    bottleneck = np.where(on_path, along, np.inf).min(axis=1)

    flat_rows = np.repeat(instance_rows, lengths)
    flat_hits = np.repeat(hits, lengths)
    flat_arcs = arcs[on_path]
    flat_push = np.repeat(bottleneck, lengths)
    residual[flat_rows, flat_arcs] -= flat_push
    partners = np.where(flat_arcs < num_edges, flat_arcs + num_edges, flat_arcs - num_edges)
    residual[flat_rows, partners] += flat_push
    adm_pad[flat_hits, topology.arc_tail[flat_arcs], topology.arc_slot[flat_arcs]] = (
        residual[flat_rows, flat_arcs] > 0.0
    )


def _batched_dinic_single(network, source: int, sink: int):
    """Registry adapter: run the edge-array solver on a batch of one.

    Lets ``solve_max_flow(..., algorithm="batched_dinic")`` and the
    conformance suite exercise the tensor arithmetic through the uniform
    interface; the dense flow matrix is rebuilt by scattering the per-edge
    flows back onto the topology's endpoints.
    """
    from repro.flow.graph import FlowResult

    topology, capacities = topology_from_matrix(network.capacity)
    result = batched_dinic_edges(
        topology,
        capacities[None, :],
        np.array([source], dtype=np.int64),
        np.array([sink], dtype=np.int64),
    )
    flow = np.zeros_like(network.capacity, dtype=np.float64)
    flow[topology.edge_src, topology.edge_dst] = result.flows[0]
    network.flow = flow
    return FlowResult(
        value=float(result.values[0]),
        flow=flow,
        algorithm="batched_dinic",
        stats=dict(result.stats),
    )


register_solver(
    "batched_dinic",
    _batched_dinic_single,
    kind="exact",
    supports_batch=True,
    recursion_free=True,
    complexity="O(V) phases x O(V E) lockstep steps over B instances",
    description="Vectorised blocking-flow Dinic over shared-CSR (B, E) edge arrays",
    tensor_edge_fn=batched_dinic_edges,
)
