"""Highest-label push-relabel max-flow solver.

The second classical push-relabel selection rule (after FIFO): always
discharge an active vertex of maximum height.  Its O(n² √m) bound beats
FIFO's O(n³) in theory; on the PPUF's dense instances the two are close,
which the solver-ablation benchmark shows.  Sharing the dense-matrix
conventions (and the float-residue tolerance) of
:mod:`repro.flow.push_relabel`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import GraphError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.registry import register_solver


def highest_label_push_relabel(network: FlowNetwork, source: int, sink: int) -> FlowResult:
    """Compute a maximum flow discharging highest-height vertices first.

    ``stats`` reports ``pushes``, ``relabels`` and ``edge_inspections``.
    """
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    n = network.n
    residual = network.capacity.copy()
    height = np.zeros(n, dtype=np.int64)
    excess = np.zeros(n, dtype=np.float64)
    height[source] = n
    tol = 1e-12 * max(float(network.capacity.max()), 1.0)

    pushes = 0
    relabels = 0
    edge_inspections = 0

    # Max-heap of (-height, vertex); lazy entries, validity re-checked on pop.
    heap: list = []

    def activate(v: int) -> None:
        if v != source and v != sink and excess[v] > tol:
            heapq.heappush(heap, (-int(height[v]), v))

    out = np.nonzero(residual[source] > 0)[0]
    for v in out.tolist():
        delta = residual[source, v]
        residual[source, v] = 0.0
        residual[v, source] += delta
        excess[v] += delta
        excess[source] -= delta
        pushes += 1
        activate(v)

    while heap:
        negative_height, u = heapq.heappop(heap)
        if excess[u] <= tol or -negative_height != height[u]:
            continue  # stale entry
        while excess[u] > tol:
            edge_inspections += n
            admissible = np.nonzero((residual[u] > 0) & (height[u] == height + 1))[0]
            if admissible.size:
                for v in admissible.tolist():
                    if excess[u] <= tol:
                        break
                    delta = min(excess[u], residual[u, v])
                    residual[u, v] -= delta
                    residual[v, u] += delta
                    was_inactive = excess[v] <= tol
                    excess[u] -= delta
                    excess[v] += delta
                    pushes += 1
                    if was_inactive:
                        activate(v)
                if excess[u] <= tol:
                    break
            edge_inspections += n
            candidates = np.nonzero(residual[u] > 0)[0]
            if candidates.size == 0:
                break
            new_height = int(height[candidates].min()) + 1
            if new_height > 2 * n:
                break  # sub-tolerance residue with no route left
            height[u] = new_height
            relabels += 1
        # u may regain excess later; it re-enters the heap via activate().

    flow = np.clip(network.capacity - residual, 0.0, network.capacity)
    network.flow = flow.copy()
    value = network.flow_value(source)
    return FlowResult(
        value=value,
        flow=flow,
        algorithm="highest_label",
        stats={
            "pushes": pushes,
            "relabels": relabels,
            "edge_inspections": edge_inspections,
        },
    )


register_solver(
    "highest_label",
    highest_label_push_relabel,
    kind="exact",
    recursion_free=True,
    complexity="O(n^2 sqrt(m))",
    description="Highest-label push-relabel (max-height discharge order)",
)
