"""Flow-network instance generators.

The PPUF instantiates a *complete* directed graph whose edge capacities are
device saturation currents; the generators here produce matching synthetic
instances for solver tests and timing sweeps without needing the circuit
substrate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.flow.graph import FlowNetwork


def complete_network(n: int, capacity: float = 1.0) -> FlowNetwork:
    """Complete directed graph with uniform edge capacity."""
    if capacity <= 0:
        raise GraphError(f"capacity must be positive, got {capacity}")
    matrix = np.full((n, n), float(capacity))
    np.fill_diagonal(matrix, 0.0)
    return FlowNetwork.from_capacity_matrix(matrix)


def random_complete_network(
    n: int,
    rng: np.random.Generator,
    *,
    mean: float = 1.0,
    relative_sigma: float = 0.1,
) -> FlowNetwork:
    """Complete graph with capacities ~ N(mean, (relative_sigma·mean)²).

    Mirrors the statistics of a PPUF network: nominally equal saturation
    currents perturbed by process variation.  Capacities are clipped to stay
    positive (a transistor never conducts a negative saturation current).
    """
    if mean <= 0:
        raise GraphError(f"mean capacity must be positive, got {mean}")
    if relative_sigma < 0:
        raise GraphError(f"relative sigma must be non-negative, got {relative_sigma}")
    matrix = rng.normal(mean, relative_sigma * mean, size=(n, n))
    np.clip(matrix, mean * 1e-3, None, out=matrix)
    np.fill_diagonal(matrix, 0.0)
    return FlowNetwork.from_capacity_matrix(matrix)


def random_sparse_network(
    n: int,
    rng: np.random.Generator,
    *,
    density: float = 0.3,
    max_capacity: float = 10.0,
    source: int = 0,
    sink: Optional[int] = None,
) -> FlowNetwork:
    """Random sparse instance for solver stress tests.

    A random subset of ordered pairs becomes edges with uniform capacities in
    (0, max_capacity].  A path ``source -> ... -> sink`` is always added so
    the instance has positive max-flow.
    """
    if not 0 < density <= 1:
        raise GraphError(f"density must be in (0, 1], got {density}")
    if max_capacity <= 0:
        raise GraphError(f"max capacity must be positive, got {max_capacity}")
    if sink is None:
        sink = n - 1
    network = FlowNetwork(n)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    capacities = rng.uniform(0.0, max_capacity, size=(n, n))
    matrix = np.where(mask, capacities, 0.0)
    # Guarantee a source-to-sink path through a random permutation of the
    # interior vertices.
    interior = [v for v in range(n) if v not in (source, sink)]
    rng.shuffle(interior)
    path = [source] + interior[: max(1, n // 4)] + [sink]
    for u, v in zip(path, path[1:]):
        if matrix[u, v] <= 0:
            matrix[u, v] = rng.uniform(max_capacity * 0.1, max_capacity)
    np.fill_diagonal(matrix, 0.0)
    network = FlowNetwork.from_capacity_matrix(matrix)
    return network
