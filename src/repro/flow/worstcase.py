"""Adversarial flow-instance generators.

Random complete graphs are *easy* for every solver (the min cut sits at a
terminal).  The generators here build the structured instances that
separate the algorithms — used by the solver stress tests and the scaling
studies that need to exercise worst-case-ish behaviour rather than the
PPUF's benign topology.
"""

from __future__ import annotations


from repro.errors import GraphError
from repro.flow.graph import FlowNetwork


def layered_network(layers: int, width: int, *, capacity: float = 1.0) -> FlowNetwork:
    """Fully connected layered DAG: source → L layers of W nodes → sink.

    Dinic needs only ~one phase, but the blocking flow must thread
    ``width**2`` edges per layer pair; Edmonds–Karp pays one BFS per
    augmenting path.  Max-flow value is ``width * capacity`` (terminal
    edges bind).
    """
    if layers < 1 or width < 1:
        raise GraphError("need at least one layer and one node per layer")
    if capacity <= 0:
        raise GraphError("capacity must be positive")
    n = 2 + layers * width
    network = FlowNetwork(n)
    source, sink = 0, n - 1

    def node(layer: int, slot: int) -> int:
        return 1 + layer * width + slot

    for slot in range(width):
        network.add_edge(source, node(0, slot), capacity)
        network.add_edge(node(layers - 1, slot), sink, capacity)
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                # Interior capacity is generous: terminals bind.
                network.add_edge(node(layer, a), node(layer + 1, b), capacity * 2.0)
    return network


def zigzag_network(segments: int, *, big: float = 1e6) -> FlowNetwork:
    """The classic bad case for naive augmenting-path choices.

    A ladder of high-capacity rails crossed by unit-capacity rungs: a
    solver that keeps routing through the rungs cancels itself and needs
    ~``big`` augmentations, while shortest-path (Edmonds–Karp) and
    blocking-flow solvers stay polynomial.  Max-flow value is ``2 * big``.
    """
    if segments < 1:
        raise GraphError("need at least one segment")
    if big <= 1:
        raise GraphError("rail capacity must exceed 1")
    # Nodes: source 0, top rail 1..segments, bottom rail segments+1..2*segments,
    # sink 2*segments+1.
    n = 2 * segments + 2
    network = FlowNetwork(n)
    source, sink = 0, n - 1
    def top(i):
        return 1 + i

    def bottom(i):
        return 1 + segments + i

    network.add_edge(source, top(0), big)
    network.add_edge(source, bottom(0), big)
    for i in range(segments - 1):
        network.add_edge(top(i), top(i + 1), big)
        network.add_edge(bottom(i), bottom(i + 1), big)
    for i in range(segments):
        network.add_edge(top(i), bottom(i), 1.0)
    network.add_edge(top(segments - 1), sink, big)
    network.add_edge(bottom(segments - 1), sink, big)
    return network


def long_path_network(length: int, *, capacity: float = 1.0) -> FlowNetwork:
    """A single path of the given length: forces ``length``-deep BFS levels.

    Dinic's phase count and the level-graph depth scale with the path
    length — the opposite regime from the diameter-2 complete graph.
    """
    if length < 1:
        raise GraphError("path length must be >= 1")
    if capacity <= 0:
        raise GraphError("capacity must be positive")
    network = FlowNetwork(length + 1)
    for v in range(length):
        network.add_edge(v, v + 1, capacity)
    return network
