"""Dinic's blocking-flow max-flow solver.

Blocking flow is the sequential core of the best known parallel algorithm
(Shiloach–Vishkin), which is why :mod:`repro.flow.parallel` wraps this module
to build the paper's parallel-runtime cost model.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.flow.graph import FlowNetwork, FlowResult


def dinic(network: FlowNetwork, source: int, sink: int) -> FlowResult:
    """Compute a maximum flow from ``source`` to ``sink``.

    ``stats`` reports ``phases`` (level-graph rebuilds — the parallel depth
    term), ``augmentations`` (paths saturated inside blocking flows) and
    ``bfs_edge_visits``.
    """
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    n = network.n
    residual = network.capacity.copy()
    phases = 0
    augmentations = 0
    bfs_edge_visits = 0

    while True:
        level, visits = _level_graph(residual, source, sink)
        bfs_edge_visits += visits
        if level[sink] < 0:
            break
        phases += 1
        # Per-vertex scan pointers make each phase O(V*E) worst case.
        pointer = np.zeros(n, dtype=np.int64)
        while True:
            pushed = _dfs_push(residual, level, pointer, source, sink, np.inf)
            if pushed <= 0:
                break
            augmentations += 1

    flow = np.clip(network.capacity - residual, 0.0, network.capacity)
    network.flow = flow.copy()
    value = network.flow_value(source)
    return FlowResult(
        value=value,
        flow=flow,
        algorithm="dinic",
        stats={
            "phases": phases,
            "augmentations": augmentations,
            "bfs_edge_visits": bfs_edge_visits,
        },
    )


def _level_graph(residual: np.ndarray, source: int, sink: int):
    """BFS levels over positive-residual edges; -1 marks unreachable."""
    n = residual.shape[0]
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    queue = deque([source])
    visits = 0
    while queue:
        u = queue.popleft()
        visits += n
        neighbours = np.nonzero((residual[u] > 0) & (level < 0))[0]
        for v in neighbours.tolist():
            level[v] = level[u] + 1
            queue.append(v)
    return level, visits


def _dfs_push(
    residual: np.ndarray,
    level: np.ndarray,
    pointer: np.ndarray,
    u: int,
    sink: int,
    limit: float,
) -> float:
    """Send up to ``limit`` units from ``u`` to ``sink`` along level edges."""
    if u == sink:
        return limit
    n = residual.shape[0]
    while pointer[u] < n:
        v = int(pointer[u])
        if residual[u, v] > 0 and level[v] == level[u] + 1:
            pushed = _dfs_push(
                residual, level, pointer, v, sink, min(limit, residual[u, v])
            )
            if pushed > 0:
                residual[u, v] -= pushed
                residual[v, u] += pushed
                return pushed
        pointer[u] += 1
    return 0.0
