"""Dinic's blocking-flow max-flow solver.

Blocking flow is the sequential core of the best known parallel algorithm
(Shiloach–Vishkin), which is why :mod:`repro.flow.parallel` wraps this module
to build the paper's parallel-runtime cost model.

The augmenting search walks an explicit stack rather than recursing: level
graphs are as deep as the residual diameter, so a path-shaped instance (see
:func:`repro.flow.worstcase.long_path_network`) would otherwise overflow
Python's default recursion limit long before the sizes the scaling
experiments need.  The level-graph BFS expands whole frontiers with numpy
boolean reductions instead of a per-vertex queue for the same reason: its
cost is bounded by the graph diameter, not the vertex count.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.registry import register_solver


def dinic(network: FlowNetwork, source: int, sink: int) -> FlowResult:
    """Compute a maximum flow from ``source`` to ``sink``.

    ``stats`` reports ``phases`` (level-graph rebuilds — the parallel depth
    term), ``augmentations`` (paths saturated inside blocking flows) and
    ``bfs_edge_visits``.
    """
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    residual = network.capacity.copy()
    stats = blocking_flow(residual, source, sink)

    flow = np.clip(network.capacity - residual, 0.0, network.capacity)
    network.flow = flow.copy()
    value = network.flow_value(source)
    return FlowResult(
        value=value,
        flow=flow,
        algorithm="dinic",
        stats=stats,
    )


def blocking_flow(residual: np.ndarray, source: int, sink: int) -> Dict[str, int]:
    """Run Dinic to completion on a dense residual matrix, in place.

    This is the allocation-light core shared by :func:`dinic` and the batched
    CRP pipeline (:mod:`repro.ppuf.batch`): the caller owns the ``residual``
    buffer (initially a copy of the capacities) and reads the flow off it
    afterwards as ``clip(capacity - residual, 0, capacity)``.

    Returns the solver stats dictionary.
    """
    n = residual.shape[0]
    phases = 0
    augmentations = 0
    bfs_edge_visits = 0

    while True:
        level, visits = _level_graph(residual, source, sink)
        bfs_edge_visits += visits
        if level[sink] < 0:
            break
        phases += 1
        # Per-vertex scan pointers make each phase O(V*E) worst case.
        pointer = np.zeros(n, dtype=np.int64)
        while True:
            pushed = _dfs_push(residual, level, pointer, source, sink)
            if pushed <= 0:
                break
            augmentations += 1

    return {
        "phases": phases,
        "augmentations": augmentations,
        "bfs_edge_visits": bfs_edge_visits,
    }


def _dinic_matrix(capacity: np.ndarray, residual: np.ndarray, source: int, sink: int):
    """Dense in-place core for the batch pipeline: ``(value, counters)``."""
    np.copyto(residual, capacity)
    counters = blocking_flow(residual, source, sink)
    flow = np.clip(capacity - residual, 0.0, capacity)
    value = float(flow[source].sum() - flow[:, source].sum())
    return value, counters


register_solver(
    "dinic",
    dinic,
    kind="exact",
    recursion_free=True,
    complexity="O(n^2 m) = O(n^4) dense",
    description="Blocking-flow (Dinic); explicit-stack DFS, frontier BFS",
    matrix_fn=_dinic_matrix,
)


def _level_graph(residual: np.ndarray, source: int, sink: int):
    """BFS levels over positive-residual edges; -1 marks unreachable.

    Whole frontiers advance at once: one boolean matrix reduction per level
    instead of one ``nonzero`` per vertex, so the Python-loop count is the
    residual diameter.
    """
    n = residual.shape[0]
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    visits = 0
    depth = 0
    while True:
        # Every frontier vertex scans its full residual row, as the queue
        # version did: n edge visits per levelled vertex.
        visits += int(frontier.sum()) * n
        fresh = (residual[frontier] > 0).any(axis=0) & (level < 0)
        if not fresh.any():
            break
        depth += 1
        level[fresh] = depth
        frontier = fresh
    return level, visits


def _dfs_push(
    residual: np.ndarray,
    level: np.ndarray,
    pointer: np.ndarray,
    source: int,
    sink: int,
) -> float:
    """Send flow from ``source`` to ``sink`` along one level-graph path.

    Iterative depth-first search with an explicit vertex stack (``path``)
    and the classic per-vertex scan pointers: an edge skipped once in a
    phase is never admissible again within that phase (its level relation
    is fixed and forward residuals only shrink), so each phase inspects
    every edge O(1) times.  Returns the bottleneck pushed, or 0.0 when the
    level graph is exhausted.
    """
    n = residual.shape[0]
    path = [source]
    while path:
        u = path[-1]
        if u == sink:
            us = np.asarray(path[:-1], dtype=np.int64)
            vs = np.asarray(path[1:], dtype=np.int64)
            pushed = float(residual[us, vs].min())
            residual[us, vs] -= pushed
            residual[vs, us] += pushed
            return pushed
        start = int(pointer[u])
        if start < n:
            row = residual[u, start:]
            admissible = np.nonzero((row > 0) & (level[start:] == level[u] + 1))[0]
        else:
            admissible = ()
        if len(admissible):
            v = start + int(admissible[0])
            pointer[u] = v
            path.append(v)
        else:
            # Dead end: retire this vertex for the phase and step the
            # parent past the edge that led here.
            pointer[u] = n
            path.pop()
            if path:
                pointer[path[-1]] += 1
    return 0.0
