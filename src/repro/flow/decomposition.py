"""Flow decomposition into source-to-sink paths.

Any feasible flow decomposes into at most m path flows (plus cycles, which
a solver-produced acyclic flow does not have).  The protocol cares because
a prover can ship the *decomposition* instead of the dense flow matrix —
O(n) paths of length ≤ n beat an n² matrix for sparse answers — and the
verifier can rebuild and check it in linear time in the decomposition size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import FlowError


@dataclass(frozen=True)
class PathFlow:
    """One path of the decomposition: vertices and the value it carries."""

    vertices: Tuple[int, ...]
    value: float

    def edges(self):
        return list(zip(self.vertices, self.vertices[1:]))


def decompose_flow(
    flow: np.ndarray,
    source: int,
    sink: int,
    *,
    tol: float = None,
) -> List[PathFlow]:
    """Decompose a feasible source→sink flow into path flows.

    Repeatedly traces a positive-flow path from source to sink and strips
    its bottleneck.  Raises :class:`FlowError` if tracing dead-ends (which
    happens exactly when the input violates conservation) or if residue
    beyond tolerance remains unreachable (cycles).
    """
    flow = np.array(flow, dtype=np.float64)
    n = flow.shape[0]
    if flow.shape != (n, n):
        raise FlowError(f"flow must be square, got {flow.shape}")
    if tol is None:
        tol = 1e-12 * max(float(flow.max()), 1.0)

    paths: List[PathFlow] = []
    for _ in range(n * n + 1):
        out_flow = flow[source]
        if float(out_flow.sum()) <= tol * n:
            break
        # Trace a path greedily along the largest remaining flow.
        path = [source]
        vertex = source
        for _ in range(n + 1):
            next_vertex = int(np.argmax(flow[vertex]))
            if flow[vertex, next_vertex] <= tol:
                raise FlowError(
                    f"flow dead-ends at vertex {vertex}: conservation violated"
                )
            path.append(next_vertex)
            vertex = next_vertex
            if vertex == sink:
                break
            if vertex in path[:-1]:
                raise FlowError("flow contains a cycle; not a path flow")
        else:
            raise FlowError("path longer than vertex count; malformed flow")
        bottleneck = min(flow[u, v] for u, v in zip(path, path[1:]))
        for u, v in zip(path, path[1:]):
            flow[u, v] -= bottleneck
        paths.append(PathFlow(vertices=tuple(path), value=float(bottleneck)))
    else:
        raise FlowError("decomposition did not terminate; malformed flow")
    return paths


def cancel_cycles(flow: np.ndarray, *, tol: float = None) -> np.ndarray:
    """Return an equivalent acyclic flow by cancelling flow cycles.

    Cycles carry no source→sink value and leave every vertex's net excess
    unchanged, so the result is the same feasible max flow — but now
    decomposable into paths.  Augmenting-path solvers never produce them;
    push-relabel solvers legitimately can.
    """
    flow = np.array(flow, dtype=np.float64)
    n = flow.shape[0]
    if flow.shape != (n, n):
        raise FlowError(f"flow must be square, got {flow.shape}")
    if tol is None:
        tol = 1e-12 * max(float(flow.max()), 1.0)

    while True:
        positive = flow > tol
        cycle = None
        color = [0] * n  # 0 unvisited, 1 on the DFS path, 2 done
        parent = [-1] * n
        for root in range(n):
            if cycle or color[root]:
                continue
            color[root] = 1
            stack = [(root, iter(np.flatnonzero(positive[root])))]
            while stack and cycle is None:
                vertex, successors = stack[-1]
                for raw in successors:
                    nxt = int(raw)
                    if color[nxt] == 0:
                        color[nxt] = 1
                        parent[nxt] = vertex
                        stack.append((nxt, iter(np.flatnonzero(positive[nxt]))))
                        break
                    if color[nxt] == 1:
                        # Back edge vertex -> nxt closes a cycle along the
                        # current DFS path.
                        path = [vertex]
                        while path[-1] != nxt:
                            path.append(parent[path[-1]])
                        cycle = list(reversed(path))
                        break
                else:
                    color[vertex] = 2
                    stack.pop()
        if cycle is None:
            flow[flow <= tol] = 0.0
            return flow
        edges = list(zip(cycle, cycle[1:] + [cycle[0]]))
        bottleneck = min(flow[u, v] for u, v in edges)
        for u, v in edges:
            flow[u, v] -= bottleneck


def recompose_flow(paths: List[PathFlow], n: int) -> np.ndarray:
    """Rebuild the dense flow matrix from a path decomposition."""
    flow = np.zeros((n, n))
    for path in paths:
        if path.value < 0:
            raise FlowError("path values must be non-negative")
        for u, v in path.edges():
            if not (0 <= u < n and 0 <= v < n):
                raise FlowError(f"path vertex out of range: ({u}, {v})")
            flow[u, v] += path.value
    return flow


def decomposition_value(paths: List[PathFlow]) -> float:
    """Total flow value carried by a decomposition."""
    return float(sum(path.value for path in paths))
