"""PRAM cost model for the Shiloach–Vishkin parallel max-flow algorithm.

The paper's lower-bound argument (Section 2) relies on the best known
parallel algorithm — Shiloach & Vishkin's O(n² log n) blocking-flow scheme
with p ≤ n processors, total runtime O(n³ log n / p).  Running a true PRAM is
impossible on one host, so this module executes the *sequential* blocking
flow schedule (Dinic phases) and accounts parallel cost analytically:

* each phase builds a level graph — parallel BFS, depth O(log n) per level
  with the edge-inspection work divided across p processors;
* each blocking flow costs O(n² log n / p) in the Shiloach–Vishkin model;
* there are at most n phases.

The resulting :class:`ParallelCost` carries both the measured sequential
numbers and the modeled parallel time, so Fig. 7's "simulation time cannot
drop below Ω(n²)" claim can be demonstrated quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GraphError
from repro.flow.dinic import dinic
from repro.flow.graph import FlowNetwork, FlowResult


@dataclass
class ParallelCost:
    """Modeled cost of the Shiloach–Vishkin parallel blocking-flow run.

    Attributes
    ----------
    processors:
        p, the number of PRAM processors (capped at n as in the paper).
    phases:
        Number of blocking-flow phases actually needed on this instance.
    parallel_steps:
        Modeled number of parallel time steps: ``phases * ceil(n^2 log2(n)/p)``.
    sequential_ops:
        Measured sequential residual-edge inspections (for comparison).
    speedup_bound:
        ``sequential_ops / parallel_steps`` — never exceeds O(p) and the
        parallel steps never drop below the Ω(n²) floor.
    floor_steps:
        The Ω(n²) lower bound with p = n processors.
    """

    processors: int
    phases: int
    parallel_steps: float
    sequential_ops: int
    speedup_bound: float
    floor_steps: float


def parallel_blocking_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    processors: int,
):
    """Solve max-flow and model its parallel runtime with ``processors`` PEs.

    Returns ``(FlowResult, ParallelCost)``.  The flow itself comes from the
    sequential blocking-flow solver (identical output); only the *cost* is
    modeled per Shiloach–Vishkin.
    """
    if processors < 1:
        raise GraphError(f"processor count must be >= 1, got {processors}")
    n = network.n
    # The algorithm cannot use more than n processors productively.
    p = min(processors, n)

    result: FlowResult = dinic(network, source, sink)
    phases = result.stats["phases"]
    log_n = max(math.log2(n), 1.0)

    per_phase = math.ceil(n * n * log_n / p)
    parallel_steps = float(max(phases, 1) * per_phase)
    # With p = n the total O(n^3 log n / p) bound floors at n^2 log n.
    floor_steps = float(n * n * log_n)

    sequential_ops = result.stats["bfs_edge_visits"] + result.stats["augmentations"] * n
    cost = ParallelCost(
        processors=p,
        phases=phases,
        parallel_steps=parallel_steps,
        sequential_ops=sequential_ops,
        speedup_bound=sequential_ops / parallel_steps if parallel_steps else 0.0,
        floor_steps=floor_steps,
    )
    return result, cost


def parallel_time_lower_bound(n: int, processors: int) -> float:
    """The paper's lower bound on parallel simulation time (arbitrary units).

    ``O(n^3 log n / p)`` with ``p <= n`` gives a floor of ``n^2 log n``.
    """
    if n < 2:
        raise GraphError(f"need at least 2 nodes, got {n}")
    if processors < 1:
        raise GraphError(f"processor count must be >= 1, got {processors}")
    p = min(processors, n)
    return n**3 * max(math.log2(n), 1.0) / p


def verification_time_bound(n: int, processors: int) -> float:
    """Parallel verification cost O(n²/p) (arbitrary units, Section 2)."""
    if n < 2:
        raise GraphError(f"need at least 2 nodes, got {n}")
    if processors < 1:
        raise GraphError(f"processor count must be >= 1, got {processors}")
    return n * n / processors
