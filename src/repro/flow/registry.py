"""Solver registry and the ``SolveStats`` telemetry spine.

The paper's claims are *comparative* — execution O(n) vs simulation Ω(n²),
verification O(n²/p) — so every scaling number in the reproduction should
come off one instrumented path.  This module provides it:

* :class:`SolverSpec` — one registered max-flow algorithm: the callable
  plus capability metadata (``exact``/``approx``, ``supports_batch``,
  ``recursion_free``, a complexity string) and optional fast paths for
  dense matrices and batched tensors.
* :class:`SolveStats` — the single structured telemetry record: wall
  seconds per pipeline phase plus machine-independent operation counts
  (BFS/DFS visits, augmenting paths, pushes/relabels, residual-edge
  touches).  Everything from :func:`repro.flow.solve_max_flow` through
  :class:`repro.ppuf.batch.BatchEvaluator` to the service's STATS wire
  verb fills or aggregates one of these.

Solver modules register themselves at import time (importing
:mod:`repro.flow` loads them all), so ``registered_solvers()`` is the one
source of truth for dispatch, CLI listings, docs tables and the Fig. 7
scaling loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import SolverError

#: The default exact solver every evaluation layer falls back to when no
#: ``algorithm`` is named.  One constant instead of a ``"dinic"`` literal
#: scattered across engines, devices, provers, the wire format and the CLI —
#: change it here and every default moves together.
DEFAULT_ALGORITHM = "dinic"


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
@dataclass
class SolveStats:
    """Structured telemetry for one or more solver runs.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that filled this record (``"mixed"`` after
        merging records from different algorithms).
    solves:
        Number of individual solves charged to this record.
    total_seconds:
        End-to-end wall clock.  For a single :meth:`SolverSpec.solve` this
        equals the solve phase; pipelines overwrite it with their own
        end-to-end measurement (with overlapping workers the phase sum may
        then exceed it).
    phase_seconds:
        Wall seconds per named pipeline phase (``prepare``/``solve``/
        ``compare`` in the batch pipeline; plain solves charge ``solve``).
    counters:
        Machine-independent operation counts, merged across solves.  Keys
        depend on the algorithm — ``augmentations``, ``bfs_edge_visits``,
        ``phases``, ``pushes``, ``relabels``, ``edge_inspections``,
        ``rounds``, ``dc_solves`` …
    """

    algorithm: str = ""
    solves: int = 0
    total_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        """Charge the enclosed block's wall clock to phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def count(self, key: str, amount: int = 1) -> None:
        """Increment one operation counter."""
        self.counters[key] = self.counters.get(key, 0) + int(amount)

    def add_counters(self, counts: Dict[str, int]) -> None:
        """Merge one run's operation counts into the running totals."""
        for key, value in counts.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    @property
    def operations(self) -> int:
        """Total operation count across all counter kinds."""
        return sum(self.counters.values())

    def phase_total(self) -> float:
        """Sum of the per-phase seconds."""
        return sum(self.phase_seconds.values())

    def merge(self, other: "SolveStats") -> None:
        """Fold another record into this one (counters, phases, time)."""
        if not self.algorithm:
            self.algorithm = other.algorithm
        elif other.algorithm and other.algorithm != self.algorithm:
            self.algorithm = "mixed"
        self.solves += other.solves
        self.total_seconds += other.total_seconds
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.add_counters(other.counters)

    def to_dict(self) -> dict:
        """JSON-friendly form (reports, wire payloads, logs)."""
        return {
            "algorithm": self.algorithm,
            "solves": self.solves,
            "total_seconds": self.total_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "counters": dict(self.counters),
        }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def unknown_name_error(what: str, name, known: Iterable[str]) -> SolverError:
    """The one error shape for a bad registry lookup.

    ``solve_max_flow``, ``engines.check_engine`` and the batch pipeline all
    raise through here so their wording cannot drift apart again.
    """
    listed = ", ".join(sorted(known))
    return SolverError(f"unknown {what} {name!r}; expected one of {listed}")


@dataclass(frozen=True)
class SolverSpec:
    """One registered max-flow algorithm with capability metadata.

    Attributes
    ----------
    name:
        Registry key (also the ``algorithm`` tag on results and telemetry).
    fn:
        ``fn(network, source, sink, **kwargs) -> FlowResult``.
    kind:
        ``"exact"`` or ``"approx"``.
    supports_batch:
        Whether the solver ships a batched tensor fast path — dense
        ``(B, n, n)`` stacks (``tensor_fn``), shared-topology ``(B, E)``
        edge arrays (``tensor_edge_fn``), or both.
    recursion_free:
        True when no code path recurses on the graph depth — i.e. safe on
        path-shaped worst cases at scaling-experiment sizes.
    complexity:
        Human-readable asymptotic cost (dense-graph form).
    description:
        One-line summary for CLI/doc listings.
    matrix_fn:
        Optional allocation-light dense core:
        ``matrix_fn(capacity, residual, source, sink) -> (value, counters)``
        solving in place on a caller-owned residual buffer.
    tensor_fn:
        Optional batched core with the signature of
        :func:`repro.flow.batched.batched_max_flow`.
    tensor_edge_fn:
        Optional edge-array batched core with the signature of
        :func:`repro.flow.batched_dinic.batched_dinic_edges`: one shared
        :class:`~repro.flow.csr.CsrTopology` plus a ``(B, E)`` capacity
        table, no dense materialisation.
    """

    name: str
    fn: Callable
    kind: str = "exact"
    supports_batch: bool = False
    recursion_free: bool = True
    complexity: str = ""
    description: str = ""
    matrix_fn: Optional[Callable] = None
    tensor_fn: Optional[Callable] = None
    tensor_edge_fn: Optional[Callable] = None

    @property
    def exact(self) -> bool:
        return self.kind == "exact"

    @property
    def tensor_kind(self) -> str:
        """Which batched tensor fast paths the solver ships.

        ``"dense"`` (``(B, n, n)`` stacks), ``"edge"`` (shared-CSR
        ``(B, E)`` arrays), ``"dense+edge"`` or ``"none"`` — the honest
        label for CLI listings, docs tables and benchmark reports.
        """
        kinds = []
        if self.tensor_fn is not None:
            kinds.append("dense")
        if self.tensor_edge_fn is not None:
            kinds.append("edge")
        return "+".join(kinds) or "none"

    # -- uniform entry points ------------------------------------------
    def solve(self, network, source, sink, *, stats: Optional[SolveStats] = None, **kwargs):
        """Uniform ``solve(network, s, t, *, stats)`` entry point.

        Runs ``fn`` and, when ``stats`` is given, charges the run to the
        ``solve`` phase and merges the solver's operation counts.
        """
        start = time.perf_counter()
        result = self.fn(network, source, sink, **kwargs)
        elapsed = time.perf_counter() - start
        if stats is not None:
            self._record(stats, elapsed, result.stats)
        return result

    def solve_matrix(
        self, capacity, residual, source, sink, *, stats: Optional[SolveStats] = None
    ) -> float:
        """Solve one dense instance in place on ``residual``.

        Uses ``matrix_fn`` when the solver ships one (same arithmetic as
        the sequential path, minus the object churn); otherwise wraps the
        capacity matrix in a :class:`~repro.flow.graph.FlowNetwork`.
        """
        from repro.flow.graph import FlowNetwork

        start = time.perf_counter()
        if self.matrix_fn is not None:
            value, counters = self.matrix_fn(capacity, residual, source, sink)
        else:
            network = FlowNetwork.from_capacity_matrix(capacity)
            result = self.fn(network, source, sink)
            value, counters = result.value, result.stats
        elapsed = time.perf_counter() - start
        if stats is not None:
            self._record(stats, elapsed, counters)
        return float(value)

    def solve_tensor(
        self,
        capacity,
        sources,
        sinks,
        *,
        residual_out=None,
        stats: Optional[SolveStats] = None,
    ):
        """Solve a ``(B, n, n)`` stack in lockstep (``supports_batch`` only)."""
        if self.tensor_fn is None:
            raise SolverError(
                f"solver {self.name!r} has no batched tensor implementation"
            )
        start = time.perf_counter()
        result = self.tensor_fn(capacity, sources, sinks, residual_out=residual_out)
        elapsed = time.perf_counter() - start
        if stats is not None:
            self._record(stats, elapsed, result.stats, solves=int(len(result.values)))
        return result

    def solve_tensor_edges(
        self,
        topology,
        capacities,
        sources,
        sinks,
        *,
        residual_out=None,
        stats: Optional[SolveStats] = None,
    ):
        """Solve a ``(B, E)`` capacity table over one shared CSR topology.

        The edge-array sibling of :meth:`solve_tensor`: no dense stack is
        ever built, the topology is reused across calls.  Only solvers
        shipping a ``tensor_edge_fn`` support it.
        """
        if self.tensor_edge_fn is None:
            raise SolverError(
                f"solver {self.name!r} has no edge-array tensor implementation"
            )
        start = time.perf_counter()
        result = self.tensor_edge_fn(
            topology, capacities, sources, sinks, residual_out=residual_out
        )
        elapsed = time.perf_counter() - start
        if stats is not None:
            self._record(stats, elapsed, result.stats, solves=int(len(result.values)))
        return result

    def _record(self, stats: SolveStats, elapsed: float, counters, *, solves: int = 1):
        if not stats.algorithm:
            stats.algorithm = self.name
        elif stats.algorithm != self.name:
            stats.algorithm = "mixed"
        stats.solves += solves
        stats.total_seconds += elapsed
        stats.phase_seconds["solve"] = stats.phase_seconds.get("solve", 0.0) + elapsed
        stats.add_counters(counters)

    def capabilities(self) -> dict:
        """Metadata dict for listings (CLI ``repro solvers``, docs)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "supports_batch": self.supports_batch,
            "tensor": self.tensor_kind,
            "recursion_free": self.recursion_free,
            "complexity": self.complexity,
            "description": self.description,
        }


_REGISTRY: Dict[str, SolverSpec] = {}


def register_solver(
    name: str,
    fn: Callable,
    *,
    kind: str = "exact",
    supports_batch: bool = False,
    recursion_free: bool = True,
    complexity: str = "",
    description: str = "",
    matrix_fn: Optional[Callable] = None,
    tensor_fn: Optional[Callable] = None,
    tensor_edge_fn: Optional[Callable] = None,
) -> SolverSpec:
    """Register a solver under ``name`` (solver modules call this at import)."""
    if kind not in ("exact", "approx"):
        raise SolverError(f"solver kind must be 'exact' or 'approx', got {kind!r}")
    if name in _REGISTRY and _REGISTRY[name].fn is not fn:
        raise SolverError(f"solver {name!r} is already registered")
    spec = SolverSpec(
        name=name,
        fn=fn,
        kind=kind,
        supports_batch=supports_batch,
        recursion_free=recursion_free,
        complexity=complexity,
        description=description,
        matrix_fn=matrix_fn,
        tensor_fn=tensor_fn,
        tensor_edge_fn=tensor_edge_fn,
    )
    _REGISTRY[name] = spec
    return spec


def get_solver(name: str) -> SolverSpec:
    """Look up a registered solver; unknown names raise :class:`SolverError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise unknown_name_error("algorithm", name, _REGISTRY) from None


def is_registered(name) -> bool:
    """Whether ``name`` is a registered solver (no exception, no KeyError)."""
    return isinstance(name, str) and name in _REGISTRY


def registered_solvers(*, kind: Optional[str] = None) -> Tuple[SolverSpec, ...]:
    """All registered specs (optionally filtered by kind), sorted by name."""
    specs = sorted(_REGISTRY.values(), key=lambda spec: spec.name)
    if kind is not None:
        specs = [spec for spec in specs if spec.kind == kind]
    return tuple(specs)


def solver_names(*, kind: Optional[str] = None) -> Tuple[str, ...]:
    """Registered names, sorted (optionally filtered by kind)."""
    return tuple(spec.name for spec in registered_solvers(kind=kind))
