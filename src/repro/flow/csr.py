"""CSR edge-array topology shared by artifacts and tensor solvers.

Every challenge of a compiled device solves max-flow on the *same* graph —
only the per-edge capacities change.  The dense batch path rebuilds a
``(B, n, n)`` capacity stack per chunk anyway, paying O(B·n²) memory traffic
for what is really an O(B·E) problem.  This module factors the shared part
out: a :class:`CsrTopology` is the immutable compressed-sparse-row view of
one edge set (forward arcs plus their residual reverse arcs), built once
and reused by every batch, every claim and every verification that shares
the graph.

Layout
------
An edge set of ``E`` forward edges becomes ``2E`` *arcs*: arc ``e`` in
``[0, E)`` is forward edge ``e`` (capacity comes from the per-challenge
table), arc ``e + E`` is its residual reverse (capacity 0).  The pairing is
pure arithmetic — ``pair(a) = a + E if a < E else a - E`` — so solvers never
materialise a pairing table.  On top of the arc list the topology carries:

* ``row_ptr``/``col_idx``/``arc_order`` — out-CSR over all ``2E`` arcs
  (grouped by tail, heads sorted), the classic adjacency query;
* ``pad_arc``/``pad_head`` — the same adjacency padded to a dense
  ``(n, max_degree)`` matrix with sentinel entries (arc id ``2E``, head
  ``n``) so a vectorised scan can treat every row identically;
* ``in_order``/``in_ptr``/``in_tail`` — in-CSR (arcs grouped by head) for
  level-synchronous BFS via ``reduceat`` over incoming arcs;
* forward-only CSR by source and by destination for per-vertex flow sums
  (value and conservation checks);
* ``opp`` — for each forward edge ``(u, v)``, the forward edge id of
  ``(v, u)`` when the graph contains it (-1 otherwise), which lets
  verification fold antiparallel residual contributions exactly the way
  the dense ``residual_capacities`` does.

``numpy.ufunc.reduceat`` silently mis-reduces empty segments (it returns
the element *at* the boundary index), so all segment reductions go through
:func:`segment_reduce`, which masks empty rows explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import GraphError


def segment_reduce(ufunc, data, ptr, *, empty):
    """``ufunc.reduceat`` over the last axis with empty segments fixed up.

    ``ptr`` is a CSR pointer array of length ``segments + 1`` over the last
    axis of ``data``.  Rows with ``ptr[i] == ptr[i + 1]`` get ``empty``
    instead of reduceat's bogus boundary element, and an all-empty pointer
    (no data at all) short-circuits to a filled array.
    """
    segments = ptr.size - 1
    total = int(ptr[-1])
    shape = data.shape[:-1] + (segments,)
    if total == 0:
        out = np.empty(shape, dtype=data.dtype)
        out[...] = empty
        return out
    bounds = np.minimum(ptr[:-1], total - 1)
    out = ufunc.reduceat(data, bounds, axis=-1)
    out[..., np.diff(ptr) == 0] = empty
    return out


@dataclass(frozen=True)
class CsrTopology:
    """Immutable CSR view of one directed edge set (see module docstring).

    All arrays are read-only; instances are safe to share across batches,
    threads and (via the module-level caches) devices.
    """

    n: int
    num_edges: int
    edge_src: np.ndarray
    edge_dst: np.ndarray
    arc_tail: np.ndarray
    arc_head: np.ndarray
    arc_slot: np.ndarray
    row_ptr: np.ndarray
    col_idx: np.ndarray
    arc_order: np.ndarray
    pad_arc: np.ndarray
    pad_head: np.ndarray
    max_degree: int
    in_order: np.ndarray
    in_ptr: np.ndarray
    in_tail: np.ndarray
    fwd_out_order: np.ndarray
    fwd_out_ptr: np.ndarray
    fwd_in_order: np.ndarray
    fwd_in_ptr: np.ndarray
    opp: np.ndarray
    pair_arc1: np.ndarray
    pair_arc2: np.ndarray

    @property
    def num_arcs(self) -> int:
        """Forward plus reverse arc count (``2 * num_edges``)."""
        return 2 * self.num_edges

    def pair(self, arcs: np.ndarray) -> np.ndarray:
        """Residual partner of each arc (forward <-> reverse), arithmetically."""
        return np.where(arcs < self.num_edges, arcs + self.num_edges, arcs - self.num_edges)

    @staticmethod
    def build(n: int, edge_src, edge_dst) -> "CsrTopology":
        """Build the CSR view of ``E`` forward edges on ``n`` vertices.

        Edges must be self-loop free and unique as ordered pairs (a
        duplicate would make the verification ``opp`` mapping ambiguous).
        A zero-edge topology is legal — every flow is trivially 0.
        """
        # Private copies: the arrays are frozen below and must not alias a
        # caller-owned (or memmapped) buffer.
        edge_src = np.array(edge_src, dtype=np.int64, copy=True)
        edge_dst = np.array(edge_dst, dtype=np.int64, copy=True)
        if n < 2:
            raise GraphError(f"a flow network needs at least 2 vertices, got {n}")
        if edge_src.shape != edge_dst.shape or edge_src.ndim != 1:
            raise GraphError("edge_src and edge_dst must be 1-D arrays of equal length")
        count = int(edge_src.size)
        if count:
            if edge_src.min() < 0 or edge_src.max() >= n or edge_dst.min() < 0 or edge_dst.max() >= n:
                raise GraphError(f"edge endpoint out of range [0, {n})")
            if np.any(edge_src == edge_dst):
                raise GraphError("self-loop edges are not allowed")
            keys = edge_src * n + edge_dst
            if np.unique(keys).size != count:
                raise GraphError("duplicate edges are not allowed in a CSR topology")
        arcs = 2 * count

        # Doubled arc list: forward arcs keep artifact edge order, reverse
        # arcs mirror them at ids E..2E-1.
        tail = np.concatenate([edge_src, edge_dst])
        head = np.concatenate([edge_dst, edge_src])

        # Out-CSR over arcs (stable lexsort keeps ties deterministic).
        arc_order = np.lexsort((np.arange(arcs), head, tail))
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(row_ptr, tail + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        col_idx = head[arc_order]

        degree = np.diff(row_ptr)
        max_degree = int(degree.max()) if count else 0
        pad_arc = np.full((n, max_degree), arcs, dtype=np.int64)
        pad_head = np.full((n, max_degree), n, dtype=np.int64)
        arc_slot = np.zeros(arcs, dtype=np.int64)
        if count:
            slot = np.arange(arcs) - np.repeat(row_ptr[:-1], degree)
            rows = np.repeat(np.arange(n), degree)
            pad_arc[rows, slot] = arc_order
            pad_head[rows, slot] = col_idx
            arc_slot[arc_order] = slot

        # In-CSR over arcs, for BFS over incoming arcs per wavefront.
        in_order = np.lexsort((np.arange(arcs), tail, head))
        in_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(in_ptr, head + 1, 1)
        np.cumsum(in_ptr, out=in_ptr)
        in_tail = tail[in_order]

        # Forward-edge CSR by src / by dst, for per-vertex flow sums.
        fwd_out_order = np.lexsort((np.arange(count), edge_dst, edge_src))
        fwd_out_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(fwd_out_ptr, edge_src + 1, 1)
        np.cumsum(fwd_out_ptr, out=fwd_out_ptr)
        fwd_in_order = np.lexsort((np.arange(count), edge_src, edge_dst))
        fwd_in_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(fwd_in_ptr, edge_dst + 1, 1)
        np.cumsum(fwd_in_ptr, out=fwd_in_ptr)

        # Per-ordered-pair arc lookup: up to two arcs run u -> v (the
        # forward edge (u, v) and the residual reverse of (v, u)).
        # ``pair_arc1`` holds the lower arc id (the forward edge when it
        # exists), ``pair_arc2`` the other, -1 when absent.  -1 is usable
        # directly as an index into a ``(B, 2E + 1)`` residual table: it
        # lands on the trailing sentinel column, which is always zero.
        pair_arc1 = np.full((n, n), -1, dtype=np.int64)
        pair_arc2 = np.full((n, n), -1, dtype=np.int64)
        if count:
            edge_ids = np.arange(count, dtype=np.int64)
            pair_arc2[edge_dst, edge_src] = edge_ids + count
            pair_arc1[edge_src, edge_dst] = edge_ids
            only_reverse = (pair_arc1 < 0) & (pair_arc2 >= 0)
            pair_arc1[only_reverse] = pair_arc2[only_reverse]
            pair_arc2[only_reverse] = -1

        # opp[e] = forward edge id of (dst, src), or -1 when absent.
        opp = np.full(count, -1, dtype=np.int64)
        if count:
            keys = edge_src * n + edge_dst
            order = np.argsort(keys)
            wanted = edge_dst * n + edge_src
            position = np.searchsorted(keys[order], wanted)
            position = np.minimum(position, count - 1)
            found = keys[order[position]] == wanted
            opp[found] = order[position[found]]

        fields = dict(
            n=int(n),
            num_edges=count,
            edge_src=edge_src,
            edge_dst=edge_dst,
            arc_tail=tail,
            arc_head=head,
            arc_slot=arc_slot,
            row_ptr=row_ptr,
            col_idx=col_idx,
            arc_order=arc_order,
            pad_arc=pad_arc,
            pad_head=pad_head,
            max_degree=max_degree,
            in_order=in_order,
            in_ptr=in_ptr,
            in_tail=in_tail,
            fwd_out_order=fwd_out_order,
            fwd_out_ptr=fwd_out_ptr,
            fwd_in_order=fwd_in_order,
            fwd_in_ptr=fwd_in_ptr,
            opp=opp,
            pair_arc1=pair_arc1,
            pair_arc2=pair_arc2,
        )
        for value in fields.values():
            if isinstance(value, np.ndarray):
                value.setflags(write=False)
        return CsrTopology(**fields)

    # -- segmented helpers (empty-row safe) ----------------------------
    def reduce_incoming(self, per_arc, ufunc, *, empty):
        """Reduce an ``(..., 2E)`` per-arc array to per-head-vertex values."""
        return segment_reduce(ufunc, per_arc[..., self.in_order], self.in_ptr, empty=empty)

    def edge_sums(self, flows: np.ndarray):
        """Per-vertex (outflow, inflow) sums of ``(..., E)`` forward flows."""
        out = segment_reduce(
            np.add, np.ascontiguousarray(flows[..., self.fwd_out_order]), self.fwd_out_ptr, empty=0.0
        )
        into = segment_reduce(
            np.add, np.ascontiguousarray(flows[..., self.fwd_in_order]), self.fwd_in_ptr, empty=0.0
        )
        return out, into


@lru_cache(maxsize=64)
def complete_topology(n: int) -> CsrTopology:
    """The complete directed graph on ``n`` vertices, cached per size.

    Edge enumeration matches :meth:`repro.ppuf.crossbar.Crossbar.edge_endpoints`
    (row-major over ordered pairs, diagonal removed), so every compiled
    crossbar device of the same size shares one topology object — pack-backed
    devices included, since the view never depends on per-device data.
    """
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate(
        [np.delete(np.arange(n, dtype=np.int64), vertex) for vertex in range(n)]
    ) if n > 1 else np.empty(0, dtype=np.int64)
    return CsrTopology.build(n, src, dst)


def topology_from_matrix(capacity: np.ndarray) -> "tuple[CsrTopology, np.ndarray]":
    """Edge-ify one dense capacity matrix: ``(topology, per-edge capacities)``.

    Only strictly positive entries become edges — zero-capacity arcs carry
    no flow and would only pad the arc arrays.
    """
    capacity = np.asarray(capacity, dtype=np.float64)
    if capacity.ndim != 2 or capacity.shape[0] != capacity.shape[1]:
        raise GraphError(f"capacity must be a square matrix, got {capacity.shape}")
    src, dst = np.nonzero(capacity)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    topology = CsrTopology.build(capacity.shape[0], src, dst)
    return topology, np.ascontiguousarray(capacity[src, dst])
