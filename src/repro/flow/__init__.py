"""Max-flow substrate.

This subpackage implements the public simulation model of the PPUF: the
max-flow problem on a directed (typically complete) graph, together with the
algorithm families the paper discusses.

Public API
----------

:class:`~repro.flow.graph.FlowNetwork`
    Dense directed flow network with per-edge capacities.
:mod:`~repro.flow.registry`
    The solver registry and the :class:`~repro.flow.registry.SolveStats`
    telemetry spine; every algorithm below registers itself here and
    :func:`solve_max_flow` is a thin lookup into it.
:func:`~repro.flow.edmonds_karp.edmonds_karp`
    Augmenting-path (BFS) reference solver.
:func:`~repro.flow.dinic.dinic`
    Blocking-flow solver.
:func:`~repro.flow.batched_dinic.batched_dinic_edges`
    Vectorised blocking-flow Dinic over shared-CSR ``(B, E)`` edge arrays
    (see :class:`~repro.flow.csr.CsrTopology`).
:func:`~repro.flow.push_relabel.push_relabel`
    FIFO push-relabel solver with the gap heuristic.
:func:`~repro.flow.approx.approximate_max_flow`
    ε-approximate solver (capacity-scaling truncation).
:func:`~repro.flow.parallel.parallel_blocking_flow`
    Shiloach–Vishkin PRAM cost model around the blocking-flow schedule.
:func:`~repro.flow.residual.verify_max_flow`
    Residual-graph BFS optimality check (the verifier's primitive).
"""

from repro.flow.registry import (
    DEFAULT_ALGORITHM,
    SolveStats,
    SolverSpec,
    get_solver,
    is_registered,
    register_solver,
    registered_solvers,
    solver_names,
    unknown_name_error,
)
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.residual import (
    residual_capacities,
    residual_reachable,
    min_cut,
    verify_max_flow,
)

# Importing the solver modules registers each algorithm; from here on the
# registry is the single source of truth for dispatch and capabilities.
from repro.flow.edmonds_karp import edmonds_karp
from repro.flow.dinic import blocking_flow, dinic
from repro.flow.batched import BatchedFlowResult, batched_max_flow
from repro.flow.batched_dinic import EdgeFlowResult, batched_dinic_edges
from repro.flow.csr import CsrTopology, complete_topology, topology_from_matrix
from repro.flow.push_relabel import push_relabel
from repro.flow.capacity_scaling import capacity_scaling
from repro.flow.highest_label import highest_label_push_relabel
from repro.flow.approx import approximate_max_flow
from repro.flow.dimacs import read_dimacs, write_dimacs
from repro.flow.decomposition import (
    PathFlow,
    cancel_cycles,
    decompose_flow,
    decomposition_value,
    recompose_flow,
)
from repro.flow.parallel import parallel_blocking_flow, ParallelCost
from repro.flow.generators import (
    complete_network,
    random_complete_network,
    random_sparse_network,
)
from repro.flow.worstcase import layered_network, long_path_network, zigzag_network
from repro.flow.instrument import SolverTiming, time_solver

#: Backward-compatible name -> callable view of the classic per-instance
#: exact solvers.  New code should go through :func:`get_solver` /
#: :func:`registered_solvers` for capability metadata and telemetry.
SOLVERS = {
    spec.name: spec.fn
    for spec in registered_solvers(kind="exact")
    if not spec.supports_batch
}


def solve_max_flow(network, source, sink, *, algorithm=DEFAULT_ALGORITHM, stats=None, **kwargs):
    """Solve max-flow with a named algorithm from the registry.

    Parameters
    ----------
    network:
        A :class:`FlowNetwork`; its flow state is overwritten.
    source, sink:
        Vertex indices.
    algorithm:
        Any registered solver name (see :func:`repro.flow.solver_names`);
        unknown names raise :class:`~repro.errors.SolverError` listing the
        registered ones.
    stats:
        Optional :class:`SolveStats` to fill with wall time and operation
        counts for this solve.
    kwargs:
        Extra solver options (e.g. ``epsilon`` for ``algorithm="approx"``).

    Returns
    -------
    FlowResult
    """
    return get_solver(algorithm).solve(network, source, sink, stats=stats, **kwargs)


__all__ = [
    "DEFAULT_ALGORITHM",
    "FlowNetwork",
    "FlowResult",
    "SOLVERS",
    "SolveStats",
    "SolverSpec",
    "get_solver",
    "is_registered",
    "register_solver",
    "registered_solvers",
    "solver_names",
    "unknown_name_error",
    "solve_max_flow",
    "edmonds_karp",
    "dinic",
    "blocking_flow",
    "BatchedFlowResult",
    "batched_max_flow",
    "EdgeFlowResult",
    "batched_dinic_edges",
    "CsrTopology",
    "complete_topology",
    "topology_from_matrix",
    "push_relabel",
    "capacity_scaling",
    "highest_label_push_relabel",
    "approximate_max_flow",
    "read_dimacs",
    "write_dimacs",
    "PathFlow",
    "cancel_cycles",
    "decompose_flow",
    "recompose_flow",
    "decomposition_value",
    "parallel_blocking_flow",
    "ParallelCost",
    "residual_capacities",
    "residual_reachable",
    "min_cut",
    "verify_max_flow",
    "complete_network",
    "random_complete_network",
    "random_sparse_network",
    "layered_network",
    "long_path_network",
    "zigzag_network",
    "SolverTiming",
    "time_solver",
]
