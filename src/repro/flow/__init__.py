"""Max-flow substrate.

This subpackage implements the public simulation model of the PPUF: the
max-flow problem on a directed (typically complete) graph, together with the
algorithm families the paper discusses.

Public API
----------

:class:`~repro.flow.graph.FlowNetwork`
    Dense directed flow network with per-edge capacities.
:func:`~repro.flow.edmonds_karp.edmonds_karp`
    Augmenting-path (BFS) reference solver.
:func:`~repro.flow.dinic.dinic`
    Blocking-flow solver.
:func:`~repro.flow.push_relabel.push_relabel`
    FIFO push-relabel solver with the gap heuristic.
:func:`~repro.flow.approx.approximate_max_flow`
    ε-approximate solver (capacity-scaling truncation).
:func:`~repro.flow.parallel.parallel_blocking_flow`
    Shiloach–Vishkin PRAM cost model around the blocking-flow schedule.
:func:`~repro.flow.residual.verify_max_flow`
    Residual-graph BFS optimality check (the verifier's primitive).
"""

from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.residual import (
    residual_capacities,
    residual_reachable,
    min_cut,
    verify_max_flow,
)
from repro.flow.edmonds_karp import edmonds_karp
from repro.flow.dinic import blocking_flow, dinic
from repro.flow.batched import BatchedFlowResult, batched_max_flow
from repro.flow.push_relabel import push_relabel
from repro.flow.capacity_scaling import capacity_scaling
from repro.flow.highest_label import highest_label_push_relabel
from repro.flow.approx import approximate_max_flow
from repro.flow.dimacs import read_dimacs, write_dimacs
from repro.flow.decomposition import (
    PathFlow,
    decompose_flow,
    decomposition_value,
    recompose_flow,
)
from repro.flow.parallel import parallel_blocking_flow, ParallelCost
from repro.flow.generators import (
    complete_network,
    random_complete_network,
    random_sparse_network,
)
from repro.flow.worstcase import layered_network, long_path_network, zigzag_network
from repro.flow.instrument import OperationCounter, SolverTiming, StageTimer, time_solver

SOLVERS = {
    "edmonds_karp": edmonds_karp,
    "dinic": dinic,
    "push_relabel": push_relabel,
    "capacity_scaling": capacity_scaling,
    "highest_label": highest_label_push_relabel,
}


def solve_max_flow(network, source, sink, *, algorithm="dinic"):
    """Solve max-flow with a named algorithm.

    Parameters
    ----------
    network:
        A :class:`FlowNetwork`; its flow state is overwritten.
    source, sink:
        Vertex indices.
    algorithm:
        One of ``"edmonds_karp"``, ``"dinic"``, ``"push_relabel"``,
        ``"capacity_scaling"``.

    Returns
    -------
    FlowResult
    """
    try:
        solver = SOLVERS[algorithm]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {known}")
    return solver(network, source, sink)


__all__ = [
    "FlowNetwork",
    "FlowResult",
    "SOLVERS",
    "solve_max_flow",
    "edmonds_karp",
    "dinic",
    "blocking_flow",
    "BatchedFlowResult",
    "batched_max_flow",
    "push_relabel",
    "capacity_scaling",
    "highest_label_push_relabel",
    "approximate_max_flow",
    "read_dimacs",
    "write_dimacs",
    "PathFlow",
    "decompose_flow",
    "recompose_flow",
    "decomposition_value",
    "parallel_blocking_flow",
    "ParallelCost",
    "residual_capacities",
    "residual_reachable",
    "min_cut",
    "verify_max_flow",
    "complete_network",
    "random_complete_network",
    "random_sparse_network",
    "layered_network",
    "long_path_network",
    "zigzag_network",
    "OperationCounter",
    "SolverTiming",
    "StageTimer",
    "time_solver",
]
