"""FIFO push-relabel max-flow solver with the gap heuristic.

Push-relabel (Goldberg–Tarjan) is the second classical algorithm the paper
benchmarks.  This implementation keeps the dense-matrix representation of the
rest of the package and adds the *gap heuristic*: when some height becomes
unoccupied, every vertex above the gap is lifted past ``n``, which prunes
hopeless relabel chains on dense graphs.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.registry import register_solver


def push_relabel(network: FlowNetwork, source: int, sink: int) -> FlowResult:
    """Compute a maximum flow from ``source`` to ``sink``.

    ``stats`` reports ``pushes``, ``relabels`` and ``gap_events``.
    """
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    n = network.n
    residual = network.capacity.copy()
    height = np.zeros(n, dtype=np.int64)
    excess = np.zeros(n, dtype=np.float64)
    height[source] = n
    # Floating-point subtraction leaves O(eps)-sized excess residue on
    # discharged vertices; without a tolerance the discharge loop relabels
    # such a vertex forever once its residual path to the source is gone.
    tol = 1e-12 * max(float(network.capacity.max()), 1.0)
    # Count of vertices at each height, for the gap heuristic.  Heights can
    # reach 2n - 1.
    height_count = np.zeros(2 * n + 2, dtype=np.int64)
    height_count[0] = n - 1
    height_count[n] = 1

    pushes = 0
    relabels = 0
    gap_events = 0
    # Residual-edge inspections: each admissible-arc scan and each relabel
    # candidate scan walks a full dense row.  This is the machine-independent
    # work measure used for asymptotic fits.
    edge_inspections = 0

    active: deque = deque()

    # Saturate all source edges.
    out = np.nonzero(residual[source] > 0)[0]
    for v in out.tolist():
        delta = residual[source, v]
        residual[source, v] = 0.0
        residual[v, source] += delta
        excess[v] += delta
        excess[source] -= delta
        pushes += 1
        if v != sink and v != source:
            active.append(v)

    while active:
        u = active.popleft()
        # Discharge u completely before moving on.
        while excess[u] > tol:
            edge_inspections += n
            admissible = np.nonzero((residual[u] > 0) & (height[u] == height + 1))[0]
            if admissible.size:
                for v in admissible.tolist():
                    if excess[u] <= 0:
                        break
                    delta = min(excess[u], residual[u, v])
                    residual[u, v] -= delta
                    residual[v, u] += delta
                    excess[u] -= delta
                    was_inactive = excess[v] <= tol
                    excess[v] += delta
                    pushes += 1
                    if was_inactive and excess[v] > tol and v != source and v != sink:
                        active.append(v)
                if excess[u] <= tol:
                    break
            # Relabel: lift u to one above its lowest residual neighbour.
            edge_inspections += n
            candidates = np.nonzero(residual[u] > 0)[0]
            if candidates.size == 0:
                # Isolated excess can't happen in a connected instance, but
                # guard against it rather than looping forever.
                break
            old_height = int(height[u])
            new_height = int(height[candidates].min()) + 1
            if new_height > 2 * n:
                # Unreachable with meaningful excess cannot happen (preflow
                # invariant); only sub-tolerance residue lands here.  Drop it.
                break
            relabels += 1
            height_count[old_height] -= 1
            # Gap heuristic: nobody left at old_height below n means every
            # vertex strictly above it (and below n) is disconnected from
            # the sink; lift them beyond n so they only route back to source.
            if height_count[old_height] == 0 and old_height < n:
                gap_events += 1
                above = (height > old_height) & (height < n)
                for w in np.nonzero(above)[0].tolist():
                    height_count[height[w]] -= 1
                    height[w] = n + 1
                    height_count[n + 1] += 1
                if new_height > old_height and new_height < n:
                    new_height = n + 1
            height[u] = new_height
            height_count[new_height] += 1

    flow = np.clip(network.capacity - residual, 0.0, network.capacity)
    network.flow = flow.copy()
    value = network.flow_value(source)
    return FlowResult(
        value=value,
        flow=flow,
        algorithm="push_relabel",
        stats={
            "pushes": pushes,
            "relabels": relabels,
            "gap_events": gap_events,
            "edge_inspections": edge_inspections,
        },
    )


register_solver(
    "push_relabel",
    push_relabel,
    kind="exact",
    recursion_free=True,
    complexity="O(n^3)",
    description="FIFO push-relabel (Goldberg-Tarjan) with the gap heuristic",
)
