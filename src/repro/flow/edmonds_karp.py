"""Edmonds–Karp augmenting-path max-flow solver.

The augmenting-path family is one of the two classical algorithms the paper
benchmarks (via the Boost graph library).  BFS on the residual graph finds
the shortest augmenting path; the bottleneck edge is saturated each round.
On a complete graph this is the O(n³)-class reference implementation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.registry import register_solver


def edmonds_karp(network: FlowNetwork, source: int, sink: int) -> FlowResult:
    """Compute a maximum flow from ``source`` to ``sink``.

    The network's ``flow`` state is overwritten with the resulting flow.
    ``stats`` reports ``augmentations`` (number of augmenting paths) and
    ``bfs_edge_visits`` (total residual edges inspected).
    """
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    n = network.n
    # Residual matrix: forward leftover capacity; reverse residual arcs are
    # represented implicitly by positive entries at (v, u).
    residual = network.capacity.copy()
    augmentations = 0
    bfs_edge_visits = 0
    parent = np.empty(n, dtype=np.int64)

    while True:
        parent.fill(-1)
        parent[source] = source
        queue = deque([source])
        found = False
        while queue and not found:
            u = queue.popleft()
            bfs_edge_visits += n
            neighbours = np.nonzero((residual[u] > 0) & (parent < 0))[0]
            for v in neighbours.tolist():
                parent[v] = u
                if v == sink:
                    found = True
                    break
                queue.append(v)
        if not found:
            break

        # Trace path, find bottleneck, apply augmentation.
        bottleneck = np.inf
        v = sink
        while v != source:
            u = int(parent[v])
            bottleneck = min(bottleneck, residual[u, v])
            v = u
        v = sink
        while v != source:
            u = int(parent[v])
            residual[u, v] -= bottleneck
            residual[v, u] += bottleneck
            v = u
        augmentations += 1

    flow = _flow_from_residual(network.capacity, residual)
    network.flow = flow.copy()
    value = network.flow_value(source)
    return FlowResult(
        value=value,
        flow=flow,
        algorithm="edmonds_karp",
        stats={"augmentations": augmentations, "bfs_edge_visits": bfs_edge_visits},
    )


register_solver(
    "edmonds_karp",
    edmonds_karp,
    kind="exact",
    recursion_free=True,
    complexity="O(V E^2) = O(n^5) dense",
    description="Shortest augmenting path (BFS); the paper's Boost reference",
)


def _flow_from_residual(capacity: np.ndarray, residual: np.ndarray) -> np.ndarray:
    """Recover an edge flow matrix from final residual capacities.

    Residual updates are symmetric (``r[u, v] -= b`` pairs with
    ``r[v, u] += b``), so ``capacity - residual`` is already the *net*
    antisymmetric flow; its positive part is a feasible flow of equal value.
    """
    net = capacity - residual
    return np.clip(net, 0.0, capacity)
