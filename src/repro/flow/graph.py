"""Dense directed flow network.

The PPUF maps a *complete* directed graph on chip, so a dense n×n capacity
matrix is the natural representation: every solver in this package reads and
writes ``numpy`` arrays rather than pointer-chasing adjacency structures.

Vertices are integers ``0..n-1``.  An edge ``(i, j)`` exists when
``capacity[i, j] > 0`` or when it was added explicitly with zero capacity
(tracked by the boolean ``adjacency`` mask so that zero-capacity edges of a
challenge-configured PPUF still appear in the residual graph bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import FlowError, GraphError

#: Relative tolerance used when comparing currents/flows.  Device currents
#: are O(1e-6) A, so an absolute epsilon would be meaningless; everything in
#: this package compares against the local capacity scale.
DEFAULT_RTOL = 1e-9


class FlowNetwork:
    """A directed graph with non-negative edge capacities and a flow state.

    Parameters
    ----------
    n:
        Number of vertices.

    Notes
    -----
    ``capacity`` and ``flow`` are dense ``float64`` matrices.  ``flow`` is the
    current (not necessarily maximal, not necessarily feasible) assignment;
    solvers reset it.  All mutating operations validate their arguments.
    """

    def __init__(self, n: int):
        if n < 2:
            raise GraphError(f"a flow network needs at least 2 vertices, got {n}")
        self.n = int(n)
        self.capacity = np.zeros((n, n), dtype=np.float64)
        self.flow = np.zeros((n, n), dtype=np.float64)
        self.adjacency = np.zeros((n, n), dtype=bool)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_capacity_matrix(cls, capacity: np.ndarray) -> "FlowNetwork":
        """Build a network from a square capacity matrix.

        Entries that are exactly zero do not create edges; the diagonal must
        be zero (no self-loops).
        """
        capacity = np.asarray(capacity, dtype=np.float64)
        if capacity.ndim != 2 or capacity.shape[0] != capacity.shape[1]:
            raise GraphError(f"capacity matrix must be square, got {capacity.shape}")
        if np.any(capacity < 0):
            raise GraphError("capacities must be non-negative")
        if np.any(np.diag(capacity) != 0):
            raise GraphError("self-loop capacities must be zero")
        network = cls(capacity.shape[0])
        network.capacity = capacity.copy()
        network.adjacency = capacity > 0
        return network

    @classmethod
    def from_arrays(
        cls,
        n: int,
        src: np.ndarray,
        dst: np.ndarray,
        capacities: np.ndarray,
    ) -> "FlowNetwork":
        """Build a network directly from flat edge arrays (no Python loop).

        The fast path for compiled PPUF artifacts
        (:mod:`repro.ppuf.compiled`): ``src``/``dst``/``capacities`` are
        parallel length-E arrays and the whole construction is two fancy
        index assignments.  Unlike :meth:`from_capacity_matrix`, every
        listed edge is recorded in the adjacency mask even at zero
        capacity (the documented bookkeeping for challenge-configured
        edges).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        capacities = np.asarray(capacities, dtype=np.float64)
        if not (src.shape == dst.shape == capacities.shape) or src.ndim != 1:
            raise GraphError(
                f"edge arrays must be 1-D and congruent, got shapes "
                f"{src.shape}, {dst.shape}, {capacities.shape}"
            )
        if src.size and (
            src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n
        ):
            raise GraphError(f"edge endpoints out of range [0, {n})")
        if np.any(src == dst):
            raise GraphError("self-loop edges are not allowed")
        if np.any(capacities < 0):
            raise GraphError("capacities must be non-negative")
        network = cls(n)
        network.capacity[src, dst] = capacities
        network.adjacency[src, dst] = True
        return network

    def add_edge(self, u: int, v: int, capacity: float) -> None:
        """Add (or overwrite) the directed edge ``u -> v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u} is not allowed")
        if capacity < 0:
            raise GraphError(f"capacity must be non-negative, got {capacity}")
        self.capacity[u, v] = float(capacity)
        self.adjacency[u, v] = True

    def copy(self) -> "FlowNetwork":
        """Return a deep copy (capacities, adjacency and flow state)."""
        other = FlowNetwork(self.n)
        other.capacity = self.capacity.copy()
        other.flow = self.flow.copy()
        other.adjacency = self.adjacency.copy()
        return other

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of (explicitly present) directed edges."""
        return int(self.adjacency.sum())

    def is_complete(self) -> bool:
        """True when every ordered vertex pair is an edge."""
        expected = self.n * (self.n - 1)
        return self.num_edges == expected

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges as ``(u, v)`` pairs."""
        rows, cols = np.nonzero(self.adjacency)
        return zip(rows.tolist(), cols.tolist())

    def successors(self, u: int) -> np.ndarray:
        """Vertices reachable from ``u`` over one explicit edge."""
        self._check_vertex(u)
        return np.nonzero(self.adjacency[u])[0]

    def predecessors(self, u: int) -> np.ndarray:
        """Vertices with an explicit edge into ``u``."""
        self._check_vertex(u)
        return np.nonzero(self.adjacency[:, u])[0]

    def flow_value(self, source: int) -> float:
        """Net flow leaving ``source`` under the current flow state."""
        self._check_vertex(source)
        return float(self.flow[source].sum() - self.flow[:, source].sum())

    def reset_flow(self) -> None:
        """Zero the flow state."""
        self.flow.fill(0.0)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check_flow(self, source: int, sink: int, *, rtol: float = DEFAULT_RTOL) -> None:
        """Validate the current flow state.

        Raises :class:`FlowError` when any capacity constraint or any
        conservation constraint (at vertices other than ``source``/``sink``)
        is violated beyond ``rtol`` relative to the network's capacity scale.
        """
        self._check_vertex(source)
        self._check_vertex(sink)
        scale = max(float(self.capacity.max()), 1.0)
        tol = rtol * scale

        if np.any(self.flow < -tol):
            raise FlowError("negative flow on some edge")
        excess = self.flow - self.capacity
        if np.any(excess > tol):
            u, v = np.unravel_index(int(np.argmax(excess)), excess.shape)
            raise FlowError(
                f"flow {self.flow[u, v]:.6g} exceeds capacity "
                f"{self.capacity[u, v]:.6g} on edge ({u}, {v})"
            )
        inflow = self.flow.sum(axis=0)
        outflow = self.flow.sum(axis=1)
        imbalance = np.abs(inflow - outflow)
        imbalance[source] = 0.0
        imbalance[sink] = 0.0
        if np.any(imbalance > tol * self.n):
            vertex = int(np.argmax(imbalance))
            raise FlowError(
                f"conservation violated at vertex {vertex}: "
                f"in {inflow[vertex]:.6g}, out {outflow[vertex]:.6g}"
            )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise GraphError(f"vertex {v} out of range [0, {self.n})")

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with ``capacity`` attributes.

        Used by the test suite to cross-check our solvers against networkx.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n))
        for u, v in self.edges():
            graph.add_edge(u, v, capacity=float(self.capacity[u, v]))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(n={self.n}, edges={self.num_edges})"


@dataclass
class FlowResult:
    """Outcome of a max-flow computation.

    Attributes
    ----------
    value:
        Max-flow value (net flow out of the source).
    flow:
        Edge flow matrix (n×n); a copy, detached from the network.
    algorithm:
        Name of the algorithm that produced the result.
    stats:
        Operation counts recorded by the solver (algorithm-specific keys,
        e.g. ``"pushes"``, ``"relabels"``, ``"augmentations"``,
        ``"bfs_edge_visits"``).
    """

    value: float
    flow: np.ndarray
    algorithm: str
    stats: Dict[str, int] = field(default_factory=dict)

    def saturated_edges(self, network: FlowNetwork, *, rtol: float = 1e-6):
        """Return the list of edges carrying flow equal to their capacity."""
        saturated = []
        for u, v in network.edges():
            cap = network.capacity[u, v]
            if cap > 0 and self.flow[u, v] >= cap * (1.0 - rtol):
                saturated.append((u, v))
        return saturated


def supersource_reduction(
    network: FlowNetwork,
    sources,
    sinks,
    *,
    capacity: Optional[float] = None,
) -> Tuple[FlowNetwork, int, int]:
    """Reduce a multi-source/multi-sink instance to single source/sink.

    The paper distinguishes source sets ``S`` and sink sets ``T``; solvers in
    this package take a single source and sink, so set instances are reduced
    by adding a supersource (index ``n``) and supersink (index ``n + 1``)
    wired with ``capacity`` (default: total network capacity, i.e. effectively
    unbounded) to every member of the respective set.

    Returns ``(reduced_network, supersource, supersink)``.
    """
    sources = list(sources)
    sinks = list(sinks)
    if not sources or not sinks:
        raise GraphError("source and sink sets must be non-empty")
    if set(sources) & set(sinks):
        raise GraphError("source and sink sets must be disjoint")
    if capacity is None:
        capacity = float(network.capacity.sum()) + 1.0

    n = network.n
    reduced = FlowNetwork(n + 2)
    reduced.capacity[:n, :n] = network.capacity
    reduced.adjacency[:n, :n] = network.adjacency
    supersource, supersink = n, n + 1
    for s in sources:
        network._check_vertex(s)
        reduced.add_edge(supersource, s, capacity)
    for t in sinks:
        network._check_vertex(t)
        reduced.add_edge(t, supersink, capacity)
    return reduced, supersource, supersink
