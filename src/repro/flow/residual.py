"""Residual graph construction and the verifier's optimality check.

Section 2 of the paper: a flow ``f`` is maximal iff no sink is reachable from
any source in the residual graph.  The verifier only needs the residual edges
and a breadth-first search, which is why verification is cheap (O(n²/p))
while *finding* the flow is expensive.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import FlowError
from repro.flow.graph import FlowNetwork


def residual_capacities(network: FlowNetwork, flow: Optional[np.ndarray] = None) -> np.ndarray:
    """Return the residual capacity matrix for a flow.

    ``r[u, v] = c(u, v) - f(u, v) + f(v, u)``: leftover forward capacity plus
    the ability to cancel reverse flow.  Tiny negative values from float
    round-off are clipped to zero.
    """
    if flow is None:
        flow = network.flow
    residual = network.capacity - flow + flow.T
    np.clip(residual, 0.0, None, out=residual)
    return residual


def residual_reachable(
    residual: np.ndarray,
    source: int,
    *,
    tol: float = 0.0,
) -> Tuple[np.ndarray, int]:
    """BFS over positive-residual edges from ``source``.

    Returns ``(reachable_mask, edge_visits)`` where ``edge_visits`` counts the
    residual-edge inspections performed — the work term in the paper's
    O(n²/p) parallel-verification bound.
    """
    n = residual.shape[0]
    reachable = np.zeros(n, dtype=bool)
    reachable[source] = True
    queue = deque([source])
    edge_visits = 0
    while queue:
        u = queue.popleft()
        row = residual[u]
        edge_visits += n
        neighbours = np.nonzero((row > tol) & ~reachable)[0]
        for v in neighbours.tolist():
            reachable[v] = True
            queue.append(v)
    return reachable, edge_visits


def verify_max_flow(
    network: FlowNetwork,
    flow: np.ndarray,
    sources: Iterable[int],
    sinks: Iterable[int],
    *,
    rtol: float = 1e-9,
) -> bool:
    """Verifier primitive: is ``flow`` a *maximum* feasible flow?

    Checks feasibility (capacity + conservation) and then runs the residual
    BFS.  Returns ``True`` when the flow is feasible and no sink is reachable
    from any source in the residual graph; ``False`` when the flow is feasible
    but not maximal.  Raises :class:`FlowError` for infeasible flows, because
    a cheating prover handing over an infeasible flow is a protocol failure,
    not a "not yet optimal" answer.
    """
    sources = list(sources)
    sinks = list(sinks)
    flow = np.asarray(flow, dtype=np.float64)
    scale = max(float(network.capacity.max()), 1.0)
    tol_abs = rtol * scale
    if np.any(flow < -tol_abs):
        raise FlowError("negative flow on some edge")
    excess = flow - network.capacity
    if np.any(excess > tol_abs):
        u, v = np.unravel_index(int(np.argmax(excess)), excess.shape)
        raise FlowError(
            f"flow {flow[u, v]:.6g} exceeds capacity "
            f"{network.capacity[u, v]:.6g} on edge ({u}, {v})"
        )
    saved = network.flow
    network.flow = flow
    try:
        _check_flow_with_terminal_sets(network, sources, sinks, rtol=rtol)
    finally:
        network.flow = saved

    residual = residual_capacities(network, np.asarray(flow, dtype=np.float64))
    tol = rtol * max(float(network.capacity.max()), 1.0)
    sink_set = set(sinks)
    for s in sources:
        reachable, _ = residual_reachable(residual, s, tol=tol)
        if any(reachable[t] for t in sink_set):
            return False
    return True


def _check_flow_with_terminal_sets(
    network: FlowNetwork,
    sources: List[int],
    sinks: List[int],
    *,
    rtol: float,
) -> None:
    scale = max(float(network.capacity.max()), 1.0)
    tol = rtol * scale
    inflow = network.flow.sum(axis=0)
    outflow = network.flow.sum(axis=1)
    imbalance = np.abs(inflow - outflow)
    for terminal in list(sources) + list(sinks):
        imbalance[terminal] = 0.0
    if np.any(imbalance > tol * network.n):
        vertex = int(np.argmax(imbalance))
        raise FlowError(f"conservation violated at internal vertex {vertex}")


def min_cut(
    network: FlowNetwork,
    flow: np.ndarray,
    source: int,
    *,
    rtol: float = 1e-9,
) -> Tuple[Set[int], Set[int], float]:
    """Extract the source-side min cut induced by a maximum flow.

    Returns ``(source_side, sink_side, cut_capacity)``.  By max-flow/min-cut
    duality the cut capacity equals the flow value; the test suite asserts
    this on every solver.
    """
    residual = residual_capacities(network, np.asarray(flow, dtype=np.float64))
    tol = rtol * max(float(network.capacity.max()), 1.0)
    reachable, _ = residual_reachable(residual, source, tol=tol)
    source_side = set(np.nonzero(reachable)[0].tolist())
    sink_side = set(range(network.n)) - source_side
    cut_capacity = 0.0
    for u in source_side:
        for v in sink_side:
            cut_capacity += network.capacity[u, v]
    return source_side, sink_side, float(cut_capacity)
