"""Timing and operation-count sampling for solver scaling studies.

Fig. 7(a) of the paper plots wall-clock simulation time against node count
and fits a polynomial.  :func:`time_solver` produces exactly those samples:
repeated timed runs of a registered solver on freshly generated instances,
with per-run operation counts so the asymptotic order can also be verified
machine-independently.

All per-run bookkeeping goes through the telemetry spine
(:class:`repro.flow.registry.SolveStats`); this module only shapes those
records into per-size samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Union

import numpy as np

from repro.flow.graph import FlowNetwork
from repro.flow.registry import SolveStats, SolverSpec, get_solver


@dataclass
class SolverTiming:
    """Wall-clock and operation-count samples for one problem size.

    Attributes
    ----------
    n:
        Node count of the instances.
    seconds:
        Per-run wall-clock times.
    operations:
        Per-run total operation counts.
    values:
        Max-flow values (sanity data — should be stable across repeats of
        the same instance).
    """

    n: int
    seconds: List[float] = field(default_factory=list)
    operations: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    @property
    def mean_seconds(self) -> float:
        return float(np.mean(self.seconds)) if self.seconds else 0.0

    @property
    def mean_operations(self) -> float:
        return float(np.mean(self.operations)) if self.operations else 0.0


def time_solver(
    solver: Union[str, SolverSpec, Callable],
    make_instance: Callable[[int], FlowNetwork],
    sizes: Sequence[int],
    *,
    repeats: int = 3,
    source: int = 0,
) -> List[SolverTiming]:
    """Time a solver across instance sizes.

    Parameters
    ----------
    solver:
        A registered algorithm name (preferred), a
        :class:`~repro.flow.registry.SolverSpec`, or a bare solver callable
        (kept for backward compatibility).
    make_instance:
        Builds a fresh :class:`FlowNetwork` for a node count (responsible for
        its own seeding if determinism is wanted).
    sizes:
        Node counts to sample.
    repeats:
        Timed runs per size (fresh instance each run).
    source:
        Source vertex; the sink is always ``n - 1``.
    """
    spec: Union[SolverSpec, None]
    if isinstance(solver, str):
        spec = get_solver(solver)
    elif isinstance(solver, SolverSpec):
        spec = solver
    else:
        spec = None

    samples: List[SolverTiming] = []
    for n in sizes:
        timing = SolverTiming(n=n)
        for _ in range(repeats):
            network = make_instance(n)
            sink = network.n - 1
            if spec is not None:
                stats = SolveStats()
                result = spec.solve(network, source, sink, stats=stats)
                timing.seconds.append(stats.total_seconds)
                timing.operations.append(stats.operations)
            else:
                start = time.perf_counter()
                result = solver(network, source, sink)
                timing.seconds.append(time.perf_counter() - start)
                timing.operations.append(sum(result.stats.values()))
            timing.values.append(result.value)
        samples.append(timing)
    return samples
