"""Timing and operation-count instrumentation for solver scaling studies.

Fig. 7(a) of the paper plots wall-clock simulation time against node count
and fits a polynomial.  :func:`time_solver` produces exactly those samples:
repeated timed runs of a named solver on freshly generated instances, with
per-run operation counts so the asymptotic order can also be verified
machine-independently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.flow.graph import FlowNetwork, FlowResult


@dataclass
class StageTimer:
    """Accumulates wall-clock seconds per named pipeline stage.

    The batched CRP pipeline times its prepare/solve/compare stages with
    one of these; repeated entries into the same stage accumulate.
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Context manager charging the enclosed block to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        """Accumulated seconds for a stage (0.0 if never entered)."""
        return self.seconds.get(name, 0.0)

    def total(self) -> float:
        """Sum across all stages."""
        return sum(self.seconds.values())


@dataclass
class OperationCounter:
    """Accumulates operation counts across repeated solver runs."""

    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, stats: Dict[str, int]) -> None:
        """Merge one run's stats into the running totals."""
        for key, value in stats.items():
            self.counts[key] = self.counts.get(key, 0) + int(value)

    def total(self) -> int:
        """Sum over all counted operation kinds."""
        return sum(self.counts.values())


@dataclass
class SolverTiming:
    """Wall-clock and operation-count samples for one problem size.

    Attributes
    ----------
    n:
        Node count of the instances.
    seconds:
        Per-run wall-clock times.
    operations:
        Per-run total operation counts.
    values:
        Max-flow values (sanity data — should be stable across repeats of
        the same instance).
    """

    n: int
    seconds: List[float] = field(default_factory=list)
    operations: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    @property
    def mean_seconds(self) -> float:
        return float(np.mean(self.seconds)) if self.seconds else 0.0

    @property
    def mean_operations(self) -> float:
        return float(np.mean(self.operations)) if self.operations else 0.0


def time_solver(
    solver: Callable[[FlowNetwork, int, int], FlowResult],
    make_instance: Callable[[int], FlowNetwork],
    sizes: Sequence[int],
    *,
    repeats: int = 3,
    source: int = 0,
) -> List[SolverTiming]:
    """Time ``solver`` across instance sizes.

    Parameters
    ----------
    solver:
        One of the solvers from :mod:`repro.flow`.
    make_instance:
        Builds a fresh :class:`FlowNetwork` for a node count (responsible for
        its own seeding if determinism is wanted).
    sizes:
        Node counts to sample.
    repeats:
        Timed runs per size (fresh instance each run).
    source:
        Source vertex; the sink is always ``n - 1``.
    """
    samples: List[SolverTiming] = []
    for n in sizes:
        timing = SolverTiming(n=n)
        for _ in range(repeats):
            network = make_instance(n)
            sink = network.n - 1
            start = time.perf_counter()
            result = solver(network, source, sink)
            elapsed = time.perf_counter() - start
            timing.seconds.append(elapsed)
            timing.operations.append(sum(result.stats.values()))
            timing.values.append(result.value)
        samples.append(timing)
    return samples
