"""ε-approximate max-flow.

The paper cites Kelner et al. (SODA 2014): an ε-approximate max-flow costs
O(m^{1+o(1)} ε⁻²), which on the complete graph is O(n^{2+o(1)} ε⁻²) — still
quadratic in n.  The role of the approximate algorithm in the paper is to
close the "an attacker could approximate instead of solving exactly" loophole
in the ESG argument.

We implement a capacity-scaling truncation: augment only along paths whose
bottleneck is at least Δ, halving Δ until the remaining augmentable flow is
provably below ε · F.  The result carries a certified relative-error bound,
and the cost model exposes the ε⁻² work blow-up that makes approximation
unhelpful for an attacker who must match an analog current to < 1 %.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, SolverError
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.registry import register_solver

#: Relative accuracy of the registry's ``"approx"`` entry when no explicit
#: ``epsilon`` is passed through :func:`repro.flow.solve_max_flow`.
DEFAULT_EPSILON = 0.01


@dataclass
class ApproximateFlowResult:
    """Outcome of the ε-approximate computation.

    Attributes
    ----------
    value:
        Value of the (feasible) approximate flow.
    upper_bound:
        Certified upper bound on the true max-flow value.
    epsilon:
        Requested relative accuracy.
    certified_error:
        Guaranteed relative gap ``(upper_bound - value) / upper_bound``.
    augmentations:
        Number of augmenting paths used.
    modeled_work:
        Kelner-style work estimate ``m * epsilon**-2`` for this instance,
        in residual-edge-inspection units.
    flow:
        The flow matrix.
    """

    value: float
    upper_bound: float
    epsilon: float
    certified_error: float
    augmentations: int
    modeled_work: float
    flow: np.ndarray


def approximate_max_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    epsilon: float,
) -> ApproximateFlowResult:
    """Compute a flow whose value is ≥ (1 − ε) of the maximum.

    Uses Δ-scaling: only augmenting paths with bottleneck ≥ Δ are taken;
    when no such path exists, the residual min cut over ≥ Δ edges bounds the
    optimality gap by m·Δ, and Δ halves.  Stops as soon as the certified gap
    is within ε.
    """
    if not 0 < epsilon < 1:
        raise GraphError(f"epsilon must be in (0, 1), got {epsilon}")
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    m = max(network.num_edges, 1)
    residual = network.capacity.copy()
    max_cap = float(network.capacity.max())
    if max_cap <= 0:
        zero = np.zeros_like(network.capacity)
        return ApproximateFlowResult(0.0, 0.0, epsilon, 0.0, 0, 0.0, zero)

    value = 0.0
    augmentations = 0
    delta = 2.0 ** np.floor(np.log2(max_cap))

    while True:
        path = _find_path(residual, source, sink, delta)
        while path is not None:
            bottleneck = min(residual[u, v] for u, v in path)
            for u, v in path:
                residual[u, v] -= bottleneck
                residual[v, u] += bottleneck
            value += bottleneck
            augmentations += 1
            path = _find_path(residual, source, sink, delta)
        # No augmenting path with bottleneck >= delta: the min cut over the
        # full residual graph has every edge < delta, so the remaining flow
        # is < m * delta.
        gap_bound = m * delta
        upper = value + gap_bound
        if upper <= 0:
            raise SolverError("approximate solver reached an inconsistent state")
        if gap_bound <= epsilon * upper:
            flow = np.clip(network.capacity - residual, 0.0, network.capacity)
            network.flow = flow.copy()
            return ApproximateFlowResult(
                value=value,
                upper_bound=float(upper),
                epsilon=epsilon,
                certified_error=float(gap_bound / upper),
                augmentations=augmentations,
                modeled_work=float(m) / (epsilon * epsilon),
                flow=flow,
            )
        delta /= 2.0


def _approx_solve(
    network: FlowNetwork, source: int, sink: int, *, epsilon: float = DEFAULT_EPSILON
) -> FlowResult:
    """Registry adapter: expose the ε-approximate solver as a ``FlowResult``.

    The certified bound and the Kelner-style work model stay available on
    :func:`approximate_max_flow`; this wrapper is what uniform dispatch and
    telemetry see.
    """
    result = approximate_max_flow(network, source, sink, epsilon=epsilon)
    return FlowResult(
        value=result.value,
        flow=result.flow,
        algorithm="approx",
        stats={"augmentations": result.augmentations},
    )


register_solver(
    "approx",
    _approx_solve,
    kind="approx",
    recursion_free=True,
    complexity="O(m^(1+o(1)) eps^-2) modeled",
    description="eps-approximate (Delta-scaling truncation, certified bound)",
)


def _find_path(residual: np.ndarray, source: int, sink: int, delta: float):
    """BFS for an augmenting path using only edges with residual ≥ delta."""
    n = residual.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    queue = deque([source])
    while queue:
        u = queue.popleft()
        neighbours = np.nonzero((residual[u] >= delta) & (parent < 0))[0]
        for v in neighbours.tolist():
            parent[v] = u
            if v == sink:
                path = []
                while v != source:
                    path.append((int(parent[v]), v))
                    v = int(parent[v])
                path.reverse()
                return path
            queue.append(v)
    return None
