"""Batched max-flow over a stack of dense instances.

The batched CRP pipeline (:mod:`repro.ppuf.batch`) evaluates hundreds of
small max-flow instances per call — one per challenge per network.  Solving
them one at a time leaves numpy idle between tiny matrix operations, so this
module advances *all* instances in lockstep over a ``(B, n, n)`` residual
tensor: every breadth-first wave and every augmentation touches the whole
batch with a handful of vectorised operations.

The algorithm is shortest-augmenting-path (Edmonds–Karp): repeatedly run a
batched BFS from each instance's source over its positive-residual edges,
then push the bottleneck along each discovered path.  Parent selection
breaks ties toward the lowest vertex index, so results are deterministic
and — because no arithmetic couples instances — independent of how a
workload is chunked into batches.

Augmenting-path max-flow is exact for real capacities: every augmentation
saturates at least one edge exactly (IEEE subtraction of a value from
itself is 0.0), and the BFS-distance argument bounds the number of
augmentations by O(V·E) without any integrality assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.flow.registry import register_solver


@dataclass
class BatchedFlowResult:
    """Outcome of a batched max-flow computation.

    Attributes
    ----------
    values:
        ``(B,)`` max-flow values, one per instance.
    residual:
        ``(B, n, n)`` final residual capacities; the flow of instance ``b``
        is ``clip(capacity[b] - residual[b], 0, capacity[b])``.
    stats:
        Aggregate operation counts: ``rounds`` (lockstep augmentation
        rounds), ``augmentations`` (total paths pushed across the batch)
        and ``bfs_edge_visits`` (comparable to the per-instance solvers:
        ``n`` edge inspections per levelled vertex).
    """

    values: np.ndarray
    residual: np.ndarray
    stats: Dict[str, int] = field(default_factory=dict)


def batched_max_flow(
    capacity: np.ndarray,
    sources: np.ndarray,
    sinks: np.ndarray,
    *,
    residual_out: np.ndarray = None,
) -> BatchedFlowResult:
    """Solve ``B`` independent dense max-flow instances in lockstep.

    Parameters
    ----------
    capacity:
        ``(B, n, n)`` non-negative capacities with zero diagonals.
    sources, sinks:
        Integer arrays of length ``B`` (or scalars, broadcast); per-instance
        terminals, each pair distinct.
    residual_out:
        Optional preallocated ``(B, n, n)`` float64 buffer for the residual
        state, letting a caller that solves many batches reuse one
        allocation.  Overwritten with the capacities before solving.
    """
    capacity = np.asarray(capacity, dtype=np.float64)
    if capacity.ndim != 3 or capacity.shape[1] != capacity.shape[2]:
        raise GraphError(
            f"batched capacities must have shape (B, n, n), got {capacity.shape}"
        )
    batch, n, _ = capacity.shape
    if n < 2:
        raise GraphError(f"a flow network needs at least 2 vertices, got {n}")
    if np.any(capacity < 0):
        raise GraphError("capacities must be non-negative")
    if np.any(capacity[:, np.arange(n), np.arange(n)] != 0):
        raise GraphError("self-loop capacities must be zero")
    sources = np.broadcast_to(np.asarray(sources, dtype=np.int64), (batch,)).copy()
    sinks = np.broadcast_to(np.asarray(sinks, dtype=np.int64), (batch,)).copy()
    for terminals in (sources, sinks):
        if terminals.size and (terminals.min() < 0 or terminals.max() >= n):
            raise GraphError(f"terminal index out of range [0, {n})")
    if np.any(sources == sinks):
        raise GraphError("source and sink must differ in every instance")

    if residual_out is None:
        residual = capacity.copy()
    else:
        if residual_out.shape != capacity.shape or residual_out.dtype != np.float64:
            raise GraphError(
                f"residual_out must be a float64 buffer of shape "
                f"{capacity.shape}, got {residual_out.dtype} {residual_out.shape}"
            )
        if not residual_out.flags.c_contiguous:
            raise GraphError(
                "residual_out must be C-contiguous; a strided or transposed "
                "view would silently slow every vectorised residual operation"
            )
        np.copyto(residual_out, capacity)
        residual = residual_out
    rounds = 0
    augmentations = 0
    bfs_edge_visits = 0

    active = np.ones(batch, dtype=bool)
    while active.any():
        rounds += 1
        idx = np.nonzero(active)[0]
        parent, reached, visits = _batched_bfs(
            residual[idx], sources[idx], sinks[idx]
        )
        bfs_edge_visits += visits
        # Instances whose sink became unreachable hold a maximum flow.
        active[idx[~reached]] = False
        if not reached.any():
            continue
        live = idx[reached]
        augmentations += int(live.size)
        _augment_paths(
            residual,
            live,
            parent[reached],
            sources[live],
            sinks[live],
        )

    flow = np.clip(capacity - residual, 0.0, capacity)
    rows = np.arange(batch)
    values = flow[rows, sources].sum(axis=1) - flow[rows, :, sources].sum(axis=1)
    return BatchedFlowResult(
        values=values,
        residual=residual,
        stats={
            "rounds": rounds,
            "augmentations": augmentations,
            "bfs_edge_visits": bfs_edge_visits,
        },
    )


def _batched_single(network, source: int, sink: int):
    """Registry adapter: run the lockstep solver on a batch of one.

    Lets ``solve_max_flow(..., algorithm="batched")`` and the conformance
    suite exercise the tensor arithmetic through the uniform interface.
    """
    from repro.flow.graph import FlowResult

    result = batched_max_flow(
        network.capacity[None, ...],
        np.array([source], dtype=np.int64),
        np.array([sink], dtype=np.int64),
    )
    flow = np.clip(network.capacity - result.residual[0], 0.0, network.capacity)
    network.flow = flow.copy()
    return FlowResult(
        value=float(result.values[0]),
        flow=flow,
        algorithm="batched",
        stats=dict(result.stats),
    )


register_solver(
    "batched",
    _batched_single,
    kind="exact",
    supports_batch=True,
    recursion_free=True,
    complexity="O(V E) rounds, lockstep over B instances",
    description="Vectorised lockstep Edmonds-Karp over a (B, n, n) tensor",
    tensor_fn=batched_max_flow,
)


def _batched_bfs(residual: np.ndarray, sources: np.ndarray, sinks: np.ndarray):
    """One BFS wavefront sweep per instance of the (A, n, n) residual stack.

    Returns ``(parent, reached, visits)``: shortest-path parent pointers
    (-1 where unvisited), a boolean per instance marking whether its sink
    was reached, and the edge-visit count.
    """
    count, n, _ = residual.shape
    rows = np.arange(count)
    positive = residual > 0
    parent = np.full((count, n), -1, dtype=np.int64)
    visited = np.zeros((count, n), dtype=bool)
    visited[rows, sources] = True
    frontier = visited.copy()
    visits = 0
    while True:
        visits += int(frontier.sum()) * n
        # candidates[a, u, v]: frontier vertex u of instance a offers edge u->v.
        candidates = frontier[:, :, None] & positive
        fresh = candidates.any(axis=1) & ~visited
        if not fresh.any():
            break
        # argmax picks the first (lowest-index) offering frontier vertex.
        chosen = np.argmax(candidates, axis=1)
        parent[fresh] = chosen[fresh]
        visited |= fresh
        frontier = fresh
        if visited[rows, sinks].all():
            break
    return parent, visited[rows, sinks], visits


def _augment_paths(
    residual: np.ndarray,
    live: np.ndarray,
    parent: np.ndarray,
    sources: np.ndarray,
    sinks: np.ndarray,
) -> None:
    """Push the bottleneck along each instance's parent path, vectorised.

    ``live`` indexes into the full residual stack; ``parent``/``sources``/
    ``sinks`` are aligned with it.  Paths have different lengths, so the
    walk from sink to source advances all instances together and freezes
    each one once it arrives.
    """
    count = live.size
    rows = np.arange(count)
    cursor = sinks.copy()
    steps = []
    bottleneck = np.full(count, np.inf)
    pending = cursor != sources
    while pending.any():
        ahead = np.where(pending, parent[rows, cursor], cursor)
        gathered = residual[live, ahead, cursor]
        bottleneck = np.where(
            pending, np.minimum(bottleneck, gathered), bottleneck
        )
        steps.append((pending, ahead, cursor.copy()))
        cursor = ahead
        pending = cursor != sources
    for mask, tail, head in steps:
        residual[live[mask], tail[mask], head[mask]] -= bottleneck[mask]
        residual[live[mask], head[mask], tail[mask]] += bottleneck[mask]
