"""Capacity-scaling max-flow solver.

The fourth exact algorithm in the suite (alongside Edmonds–Karp, Dinic and
push-relabel): augment only along paths whose bottleneck is at least Δ,
halving Δ until it is negligible against the capacity scale, then finish
with plain shortest augmenting paths.  Classic O(m² log U) behaviour on
integer capacities; on the PPUF's real-valued capacities the scaling
phases do the heavy lifting and the clean-up phase handles the float tail.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.flow.approx import _find_path
from repro.flow.graph import FlowNetwork, FlowResult
from repro.flow.registry import register_solver

#: The clean-up phase starts once Delta falls below this fraction of the
#: largest capacity; everything smaller is float-tail territory.
_SCALING_FLOOR = 1e-12


def capacity_scaling(network: FlowNetwork, source: int, sink: int) -> FlowResult:
    """Compute an exact maximum flow by Δ-scaling augmentation.

    ``stats`` reports ``augmentations`` and ``phases`` (number of distinct
    Δ values used, including the exact clean-up phase).
    """
    network._check_vertex(source)
    network._check_vertex(sink)
    if source == sink:
        raise GraphError("source and sink must differ")

    residual = network.capacity.copy()
    max_cap = float(network.capacity.max())
    augmentations = 0
    phases = 0

    if max_cap > 0:
        delta = 2.0 ** np.floor(np.log2(max_cap))
        while delta >= max_cap * _SCALING_FLOOR:
            phases += 1
            augmentations += _augment_all(residual, source, sink, delta)
            delta /= 2.0

    # Exact clean-up: any remaining augmenting path at all.
    phases += 1
    augmentations += _augment_all(residual, source, sink, np.nextafter(0.0, 1.0))

    flow = np.clip(network.capacity - residual, 0.0, network.capacity)
    network.flow = flow.copy()
    value = network.flow_value(source)
    return FlowResult(
        value=value,
        flow=flow,
        algorithm="capacity_scaling",
        stats={"augmentations": augmentations, "phases": phases},
    )


def _augment_all(residual: np.ndarray, source: int, sink: int, delta: float) -> int:
    """Saturate every augmenting path with bottleneck >= delta."""
    count = 0
    path = _find_path(residual, source, sink, delta)
    while path is not None:
        bottleneck = min(residual[u, v] for u, v in path)
        for u, v in path:
            residual[u, v] -= bottleneck
            residual[v, u] += bottleneck
        count += 1
        path = _find_path(residual, source, sink, delta)
    return count


register_solver(
    "capacity_scaling",
    capacity_scaling,
    kind="exact",
    recursion_free=True,
    complexity="O(m^2 log U)",
    description="Delta-scaling augmentation with an exact clean-up phase",
)
