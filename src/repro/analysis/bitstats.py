"""Bit-stream randomness tests for PPUF response sequences.

Beyond the aggregate Table-1 metrics, an authentication token generator
cares whether a *stream* of response bits looks random.  This module
implements the two classic NIST SP 800-22 screening tests in closed form:

* **monobit (frequency) test** — is the number of ones consistent with a
  fair coin?
* **runs test** — is the number of bit alternations consistent with
  independence?

Both return p-values; a healthy PPUF response stream should pass at the
usual 1 % significance level (asserted in the test suite on simulated
streams).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from repro.errors import ReproError


@dataclass(frozen=True)
class BitTestResult:
    """A randomness test outcome."""

    name: str
    statistic: float
    p_value: float

    def passes(self, significance: float = 0.01) -> bool:
        """True when the stream is consistent with randomness."""
        if not 0 < significance < 1:
            raise ReproError(f"significance must be in (0, 1), got {significance}")
        return self.p_value >= significance


def _check_bits(bits) -> np.ndarray:
    bits = np.asarray(bits)
    if bits.ndim != 1 or bits.size < 16:
        raise ReproError("need a 1-D stream of at least 16 bits")
    if not np.all((bits == 0) | (bits == 1)):
        raise ReproError("stream must contain only 0/1")
    return bits.astype(np.int64)


def monobit_test(bits) -> BitTestResult:
    """NIST frequency test: |#ones - #zeros| / sqrt(n) against N(0, 1)."""
    bits = _check_bits(bits)
    n = bits.size
    s = abs(int(2 * bits.sum() - n))
    statistic = s / np.sqrt(n)
    p_value = float(erfc(statistic / np.sqrt(2.0)))
    return BitTestResult(name="monobit", statistic=float(statistic), p_value=p_value)


def runs_test(bits) -> BitTestResult:
    """NIST runs test: total alternations against expectation.

    Prerequisite per the NIST spec: the monobit proportion must be within
    2/sqrt(n) of 1/2, else the runs p-value is defined as 0.
    """
    bits = _check_bits(bits)
    n = bits.size
    pi = bits.mean()
    if abs(pi - 0.5) >= 2.0 / np.sqrt(n):
        return BitTestResult(name="runs", statistic=np.inf, p_value=0.0)
    runs = int(np.count_nonzero(np.diff(bits))) + 1
    expected = 2.0 * n * pi * (1.0 - pi)
    statistic = abs(runs - expected) / (2.0 * np.sqrt(2.0 * n) * pi * (1.0 - pi))
    p_value = float(erfc(statistic / np.sqrt(2.0)))
    return BitTestResult(name="runs", statistic=float(statistic), p_value=p_value)


def response_stream(ppuf, count: int, rng: np.random.Generator, *, engine: str = "maxflow") -> np.ndarray:
    """Sample a response bit stream over fresh random challenges."""
    if count < 1:
        raise ReproError(f"count must be >= 1, got {count}")
    space = ppuf.challenge_space()
    challenges = [space.random(rng) for _ in range(count)]
    return ppuf.response_bits(challenges, engine=engine)
