"""Hardware-cost model of a PPUF design point (Section 4's trade-offs).

The grid partition of Section 4.2 exists because of cost: one control
signal per edge block would need n(n-1) voltage sources, growing
quadratically, so the paper groups blocks into l² grids driven by
capacitor-stored biases.  This module counts the silicon:

* device counts — each edge block is 4 MOSFETs + 2 diodes + 2 resistors
  (Fig. 2d), twice over for the two networks;
* control resources — l² bias capacitors + their charge/discharge switches
  per network, plus the 2·ceil(log2 n) terminal-select lines;
* a first-order area estimate from per-device footprints.

The companion experiment shows the n²-to-l² reduction in control signals —
the quantitative version of the paper's "high cost for large design"
argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Devices inside one edge block (Fig. 2d).
MOSFETS_PER_BLOCK = 4
DIODES_PER_BLOCK = 2
RESISTORS_PER_BLOCK = 2


@dataclass(frozen=True)
class HardwareBudget:
    """Silicon inventory of one complete PPUF (both networks).

    Attributes
    ----------
    n, l:
        Design point.
    edge_blocks:
        Total edge blocks: 2 * n * (n-1).
    mosfets, diodes, resistors:
        Device totals across both networks.
    bias_capacitors:
        Capacitor-stored control biases: 2 * l².
    control_signals:
        External control lines: l² shared type-B inputs + terminal-select
        lines (the quantity the grid partition reduces from n(n-1)).
    naive_control_signals:
        What one-signal-per-block would have cost: n * (n-1).
    area_m2:
        First-order active-area estimate.
    """

    n: int
    l: int
    edge_blocks: int
    mosfets: int
    diodes: int
    resistors: int
    bias_capacitors: int
    control_signals: int
    naive_control_signals: int
    area_m2: float

    @property
    def control_reduction(self) -> float:
        """How many times fewer control signals the grid partition needs."""
        return self.naive_control_signals / max(self.control_signals, 1)


def hardware_budget(
    n: int,
    l: int,
    *,
    mosfet_area: float = 0.5e-12,
    diode_area: float = 0.3e-12,
    resistor_area: float = 2.0e-12,
    capacitor_area: float = 5.0e-12,
) -> HardwareBudget:
    """Count devices and estimate area for a design point.

    Default footprints are 32 nm-class orders of magnitude (the resistor
    and bias capacitor dominate, as they would on silicon).
    """
    if n < 2:
        raise ReproError(f"need at least 2 nodes, got {n}")
    if not 1 <= l <= n:
        raise ReproError(f"grid dimension must satisfy 1 <= l <= n, got {l}")
    for name, value in (
        ("mosfet_area", mosfet_area),
        ("diode_area", diode_area),
        ("resistor_area", resistor_area),
        ("capacitor_area", capacitor_area),
    ):
        if value <= 0:
            raise ReproError(f"{name} must be positive")

    blocks = 2 * n * (n - 1)
    mosfets = blocks * MOSFETS_PER_BLOCK
    diodes = blocks * DIODES_PER_BLOCK
    resistors = blocks * RESISTORS_PER_BLOCK
    capacitors = 2 * l * l
    terminal_lines = 2 * max(1, (n - 1).bit_length())
    control_signals = l * l + terminal_lines
    area = (
        mosfets * mosfet_area
        + diodes * diode_area
        + resistors * resistor_area
        + capacitors * capacitor_area
    )
    return HardwareBudget(
        n=n,
        l=l,
        edge_blocks=blocks,
        mosfets=mosfets,
        diodes=diodes,
        resistors=resistors,
        bias_capacitors=capacitors,
        control_signals=control_signals,
        naive_control_signals=n * (n - 1),
        area_m2=float(area),
    )
