"""Evaluation substrate: PUF metrics, environment corners, fits, codes."""

from repro.analysis.metrics import (
    MetricSummary,
    inter_class_hd,
    intra_class_hd,
    uniformity,
    randomness,
    flip_probability,
)
from repro.analysis.environment import EnvironmentCorner, default_corners
from repro.analysis.fitting import LinearFit, fit_linear
from repro.analysis.power import PowerEstimate, estimate_power
from repro.analysis.codes import (
    hamming_ball_volume,
    codebook_size_lower_bound,
    crp_space_lower_bound,
)
from repro.analysis.montecarlo import Requirement2Result, requirement2_ratio
from repro.analysis.bitstats import (
    BitTestResult,
    monobit_test,
    response_stream,
    runs_test,
)
from repro.analysis.entropy import EntropySummary, min_entropy_per_bit, response_entropy
from repro.analysis.aging import AgingModel, aged_ppuf, aging_study
from repro.analysis.cost import HardwareBudget, hardware_budget

__all__ = [
    "MetricSummary",
    "inter_class_hd",
    "intra_class_hd",
    "uniformity",
    "randomness",
    "flip_probability",
    "EnvironmentCorner",
    "default_corners",
    "LinearFit",
    "fit_linear",
    "PowerEstimate",
    "estimate_power",
    "hamming_ball_volume",
    "codebook_size_lower_bound",
    "crp_space_lower_bound",
    "Requirement2Result",
    "requirement2_ratio",
    "BitTestResult",
    "monobit_test",
    "runs_test",
    "response_stream",
    "EntropySummary",
    "min_entropy_per_bit",
    "response_entropy",
    "AgingModel",
    "aged_ppuf",
    "aging_study",
    "HardwareBudget",
    "hardware_budget",
]
