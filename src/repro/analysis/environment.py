"""Environmental corners for the intra-class-HD evaluation.

Section 5: intra-class HD accounts for a supply-voltage variation of 10 %
and temperatures from −20 °C to 80 °C.  A corner is a (supply scale,
temperature) pair; :func:`default_corners` spans the paper's ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError
from repro.units import celsius


@dataclass(frozen=True)
class EnvironmentCorner:
    """One environmental stress point."""

    supply_scale: float
    temperature_c: float
    label: str = ""

    def __post_init__(self):
        if self.supply_scale <= 0:
            raise ReproError(f"supply scale must be positive, got {self.supply_scale}")
        if not self.label:
            object.__setattr__(
                self,
                "label",
                f"V x{self.supply_scale:.2f} / {self.temperature_c:+.0f} C",
            )

    @property
    def temperature_k(self) -> float:
        return celsius(self.temperature_c)

    def apply(self, ppuf):
        """Return the PPUF viewed at this corner."""
        return ppuf.at_environment(
            supply_scale=self.supply_scale, temperature_k=self.temperature_k
        )


def default_corners(
    *,
    supply_scales: Sequence[float] = (0.9, 1.1),
    temperatures_c: Sequence[float] = (-20.0, 80.0),
    include_cross: bool = True,
) -> List[EnvironmentCorner]:
    """The paper's stress grid: ±10 % supply and −20/80 °C extremes.

    With ``include_cross`` the full product grid is returned; otherwise only
    the single-axis corners.
    """
    corners: List[EnvironmentCorner] = []
    for scale in supply_scales:
        corners.append(EnvironmentCorner(supply_scale=scale, temperature_c=27.0))
    for temp in temperatures_c:
        corners.append(EnvironmentCorner(supply_scale=1.0, temperature_c=temp))
    if include_cross:
        for scale in supply_scales:
            for temp in temperatures_c:
                corners.append(EnvironmentCorner(supply_scale=scale, temperature_c=temp))
    return corners
