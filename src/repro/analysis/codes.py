"""CRP-space counting via binary codes (Section 4.2).

The usable type-B challenges form a binary code of length l² with minimum
Hamming distance d.  Plotkin-era bounds (the paper cites [21]) guarantee a
code of size at least

    2^(l²) / sum_{i=0}^{d-1} C(l², i)

(the Gilbert–Varshamov denominator the paper writes), and the total CRP
count multiplies in the n(n-1) type-A selections:

    N_CRP >= n(n-1) * 2^(l²) / sum_{i=0}^{d-1} C(l², i).

For the paper's example (n = 200, l = 15, d = 2l = 30) this evaluates to
~6.5x10^35, which the tests pin down.

All counting is exact integer arithmetic; float conversions are provided
for reporting.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb

from repro.errors import ReproError


def hamming_ball_volume(length: int, radius: int) -> int:
    """Number of binary words within Hamming distance ``radius``: Σ C(l, i)."""
    if length < 1:
        raise ReproError(f"code length must be >= 1, got {length}")
    if radius < 0 or radius > length:
        raise ReproError(f"radius must be in [0, {length}], got {radius}")
    return sum(comb(length, i) for i in range(radius + 1))


def codebook_size_lower_bound(length: int, min_distance: int) -> Fraction:
    """Guaranteed size of a length-l², distance-d code (GV-style bound).

    ``2^length / sum_{i=0}^{d-1} C(length, i)`` — exactly the expression in
    the paper's Section 4.2.
    """
    if min_distance < 1 or min_distance > length:
        raise ReproError(
            f"min_distance must be in [1, {length}], got {min_distance}"
        )
    denominator = hamming_ball_volume(length, min_distance - 1)
    return Fraction(2**length, denominator)


def crp_space_lower_bound(n: int, l: int, min_distance: int) -> Fraction:
    """The paper's N_CRP bound: type-A count times the code-size bound."""
    if n < 2:
        raise ReproError(f"need at least 2 nodes, got {n}")
    if not 1 <= l <= n:
        raise ReproError(f"grid dimension must satisfy 1 <= l <= n, got {l}")
    type_a = n * (n - 1)
    return type_a * codebook_size_lower_bound(l * l, min_distance)
