"""Fitting and extrapolation helpers (Figs. 7 and 8).

The paper measures small PPUFs and extrapolates to 900 nodes; the linear
fit here serves Fig. 8 (output current scales linearly in n) while the
power-law fit lives in :mod:`repro.ppuf.esg` next to the ESG model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SolverError


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y(x) = slope * x + intercept`` with fit quality."""

    slope: float
    intercept: float
    r_squared: float

    def __call__(self, x) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares line through the samples."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise SolverError("need at least two (x, y) samples")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(np.sum((y - y.mean()) ** 2))
    residual = float(np.sum((y - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)
