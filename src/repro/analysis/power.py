"""Power and energy budget (Section 5's 900-node estimate).

The paper's accounting: the two crossbars draw (2 × average network
current × V(s)); the current comparator draws its static power; one
evaluation lasts the execution delay, so

    E_eval = (P_crossbars + P_comparator) * T_exe(n).

For its 900-node design the paper reports 134.4 µW (crossbars), 153 µW
(comparator, ref [25]), 1.0 µs delay → ≈ 287.4 pJ per evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class PowerEstimate:
    """Per-evaluation power/energy breakdown.

    Attributes
    ----------
    crossbar_power:
        Static draw of the two networks [W].
    comparator_power:
        Comparator draw [W].
    execution_delay:
        Evaluation duration [s].
    energy_per_evaluation:
        Total energy of one evaluation [J].
    """

    crossbar_power: float
    comparator_power: float
    execution_delay: float

    @property
    def total_power(self) -> float:
        return self.crossbar_power + self.comparator_power

    @property
    def energy_per_evaluation(self) -> float:
        return self.total_power * self.execution_delay


def estimate_power(
    average_network_current: float,
    supply_voltage: float,
    execution_delay: float,
    *,
    comparator_power: float = 153e-6,
) -> PowerEstimate:
    """Build the Section-5 power budget from measured/fitted quantities.

    Parameters
    ----------
    average_network_current:
        Mean source current of one crossbar network [A] (from Fig. 8's fit).
    supply_voltage:
        V(s) [V].
    execution_delay:
        T_exe at the design's node count [s].
    comparator_power:
        Static comparator power [W] (default from the paper's ref [25]).
    """
    if average_network_current < 0:
        raise ReproError("network current must be non-negative")
    if supply_voltage <= 0:
        raise ReproError("supply voltage must be positive")
    if execution_delay <= 0:
        raise ReproError("execution delay must be positive")
    if comparator_power < 0:
        raise ReproError("comparator power must be non-negative")
    crossbar_power = 2.0 * average_network_current * supply_voltage
    return PowerEstimate(
        crossbar_power=crossbar_power,
        comparator_power=comparator_power,
        execution_delay=execution_delay,
    )
