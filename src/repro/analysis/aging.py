"""Device-aging model (BTI-style threshold drift).

The paper evaluates voltage/temperature corners; the other reliability axis
an adopter asks about is *aging*: bias-temperature instability shifts NMOS
thresholds logarithmically over operating time,

    dVt(t) = amplitude * log10(1 + t / t0),

with device-to-device dispersion around that mean.  Because both PPUF
networks age under the same profile, the differential comparison cancels
the mean shift; the dispersion term is what erodes response stability.
:func:`aged_ppuf` builds an aged view of existing silicon, and
:func:`aging_study` sweeps operating years against response drift —
the PPUF analogue of an intra-class-HD-over-lifetime plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.variation import VariationSample
from repro.errors import ReproError

#: Seconds per (365-day) year.
YEAR_SECONDS = 365.0 * 24 * 3600


@dataclass(frozen=True)
class AgingModel:
    """BTI-style logarithmic threshold drift.

    Attributes
    ----------
    amplitude:
        Mean Vt shift per decade of time [V]; positive (devices slow down).
    dispersion:
        Device-to-device relative spread of the shift (lognormal-ish
        behaviour approximated as Gaussian around the mean).
    t0:
        Onset time constant [s].
    """

    amplitude: float = 0.010
    dispersion: float = 0.25
    t0: float = 1.0e4

    def __post_init__(self):
        if self.amplitude < 0:
            raise ReproError("aging amplitude must be non-negative")
        if self.dispersion < 0:
            raise ReproError("aging dispersion must be non-negative")
        if self.t0 <= 0:
            raise ReproError("aging onset time must be positive")

    def mean_shift(self, seconds: float) -> float:
        """Mean Vt drift after an operating time [V]."""
        if seconds < 0:
            raise ReproError("operating time must be non-negative")
        return self.amplitude * np.log10(1.0 + seconds / self.t0)

    def sample_shifts(
        self, shape, seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-device drift: mean shift plus dispersion."""
        mean = self.mean_shift(seconds)
        if mean == 0.0:
            return np.zeros(shape)
        return rng.normal(mean, self.dispersion * mean, size=shape)


def aged_sample(
    sample: VariationSample,
    model: AgingModel,
    seconds: float,
    rng: np.random.Generator,
) -> VariationSample:
    """A variation sample with aging drift added to every transistor."""
    shifts = model.sample_shifts(sample.delta_vt.shape, seconds, rng)
    return VariationSample(
        delta_vt=sample.delta_vt + shifts,
        systematic=sample.systematic.copy(),
    )


def aged_ppuf(ppuf, model: AgingModel, seconds: float, rng: np.random.Generator):
    """An aged view of the same silicon (both networks drift)."""
    from repro.ppuf.device import Ppuf, PpufNetwork

    network_a = ppuf.network_a
    network_b = ppuf.network_b
    return Ppuf(
        crossbar=ppuf.crossbar,
        network_a=PpufNetwork(
            ppuf.crossbar,
            aged_sample(network_a.sample, model, seconds, rng),
            network_a.tech,
            network_a.conditions,
        ),
        network_b=PpufNetwork(
            ppuf.crossbar,
            aged_sample(network_b.sample, model, seconds, rng),
            network_b.tech,
            network_b.conditions,
        ),
        comparator=ppuf.comparator,
    )


def aging_study(
    ppuf,
    years,
    rng: np.random.Generator,
    *,
    model: AgingModel = AgingModel(),
    challenges: int = 40,
    engine: str = "maxflow",
):
    """Response drift (normalised HD vs fresh silicon) per operating age.

    Returns ``(years, drift_fractions)`` arrays.
    """
    years = np.asarray(list(years), dtype=np.float64)
    if years.size == 0:
        raise ReproError("need at least one age point")
    if np.any(years < 0):
        raise ReproError("ages must be non-negative")
    space = ppuf.challenge_space()
    challenge_list = [space.random(rng) for _ in range(challenges)]
    reference = ppuf.response_bits(challenge_list, engine=engine)
    drift = []
    for age in years:
        aged = aged_ppuf(ppuf, model, age * YEAR_SECONDS, rng)
        responses = aged.response_bits(challenge_list, engine=engine)
        drift.append(float(np.mean(responses != reference)))
    return years, np.asarray(drift)
