"""Monte-Carlo drivers: the Requirement-2 sufficiency check.

Requirement 2: the spread of the saturation current due to *process
variation* must dwarf the current change induced by *short-channel effects*
(the residual Vds sensitivity that survives source degeneration), or the
public simulation model would mispredict responses.  The paper's SPICE
Monte Carlo finds a ~130x ratio for the two-level-SD block; this module
reproduces the experiment on our device model for any SD level, which also
yields the SD-level ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blocks.edge import edge_currents_at_voltage
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, OperatingConditions, PTM32, Technology
from repro.circuit.variation import VariationModel
from repro.blocks.designs import build_design
from repro.errors import ReproError


@dataclass(frozen=True)
class Requirement2Result:
    """Outcome of the variation-vs-SCE Monte Carlo.

    Attributes
    ----------
    variation_amplitude:
        Std of the saturation current across process variation [A].
    sce_change:
        Mean |I(v_high) - I(v_low)| over the saturated operating window [A].
    ratio:
        ``variation_amplitude / sce_change`` — the paper reports ~130x for
        the two-level-SD block.
    samples:
        Monte-Carlo sample count.
    """

    variation_amplitude: float
    sce_change: float
    samples: int

    @property
    def ratio(self) -> float:
        if self.sce_change <= 0:
            raise ReproError("SCE change is zero; ratio undefined")
        return self.variation_amplitude / self.sce_change


def requirement2_ratio(
    rng: np.random.Generator,
    *,
    samples: int = 2000,
    tech: Technology = PTM32,
    conditions: OperatingConditions = NOMINAL_CONDITIONS,
    v_low: float = 0.7,
    v_high: float = 2.0,
) -> Requirement2Result:
    """Monte Carlo over edge blocks: variation spread vs SCE drift.

    ``v_low``/``v_high`` bound the voltage window an edge can see once
    saturated; both networks' cut edges live inside it during evaluation.
    """
    if samples < 2:
        raise ReproError(f"need at least 2 samples, got {samples}")
    if not 0 < v_low < v_high:
        raise ReproError("need 0 < v_low < v_high")
    sample = VariationModel(tech).sample(samples, rng)
    bits = np.ones(samples, dtype=np.uint8)
    i_low = edge_currents_at_voltage(v_low, bits, sample, tech, conditions)
    i_high = edge_currents_at_voltage(v_high, bits, sample, tech, conditions)
    # Capacity spread at the midpoint of the window.
    i_mid = edge_currents_at_voltage(0.5 * (v_low + v_high), bits, sample, tech, conditions)
    return Requirement2Result(
        variation_amplitude=float(i_mid.std(ddof=1)),
        sce_change=float(np.mean(np.abs(i_high - i_low))),
        samples=samples,
    )


def sd_level_drift(
    *,
    tech: Technology = PTM32,
    conditions: OperatingConditions = NOMINAL_CONDITIONS,
    v_low: float = 1.2,
    v_high: float = 2.0,
):
    """Saturation drift of the three design variants (the SD ablation).

    Returns ``{design_name: relative_drift}`` over a window where all three
    variants are saturated — the quantitative version of Fig. 3(a).
    """
    drifts = {}
    for name in ("bare", "sd1", "sd2"):
        design = build_design(name, tech, conditions)
        i_high = design.current(v_high)
        if i_high <= 0:
            raise ReproError(f"design {name} carries no current at {v_high} V")
        drifts[name] = design.saturation_drift(v_low, v_high) / i_high
    return drifts
