"""Technology parameter sweeps.

A designer adopting this PPUF tunes a handful of technology knobs (λ, the
variation sigmas, the degeneration resistor).  This module provides a small
sweep framework plus canned metric functions for the two design-critical
quantities:

* the Requirement-2 ratio (variation amplitude / SCE drift), and
* the population uniqueness (inter-class HD of small PPUF populations).

``examples/technology_sweep.py`` walks both.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.analysis.metrics import inter_class_hd
from repro.analysis.montecarlo import requirement2_ratio
from repro.circuit.ptm32 import NOMINAL_CONDITIONS, PTM32, Technology
from repro.errors import ReproError


@dataclass
class SweepResult:
    """Outcome of a one-parameter technology sweep."""

    parameter: str
    values: List[float]
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def metric(self, name: str) -> List[float]:
        if name not in self.metrics:
            known = ", ".join(sorted(self.metrics))
            raise ReproError(f"unknown metric {name!r}; have {known}")
        return self.metrics[name]


def sweep_technology(
    parameter: str,
    values: Sequence[float],
    metric_fn: Callable[[Technology], Dict[str, float]],
    *,
    base: Technology = PTM32,
) -> SweepResult:
    """Evaluate ``metric_fn`` across variants of one technology field."""
    if not hasattr(base, parameter):
        raise ReproError(f"technology card has no field {parameter!r}")
    if len(values) == 0:
        raise ReproError("sweep needs at least one value")
    result = SweepResult(parameter=parameter, values=list(values))
    for value in values:
        tech = dataclasses.replace(base, **{parameter: value})
        metrics = metric_fn(tech)
        for name, metric_value in metrics.items():
            result.metrics.setdefault(name, []).append(float(metric_value))
    return result


def requirement2_metric(*, samples: int = 500, seed: int = 0):
    """Canned metric: the Requirement-2 ratio for a technology card."""

    def metric(tech: Technology) -> Dict[str, float]:
        rng = np.random.default_rng(seed)
        outcome = requirement2_ratio(rng, samples=samples, tech=tech)
        return {
            "req2_ratio": outcome.ratio,
            "variation_amplitude": outcome.variation_amplitude,
            "sce_change": outcome.sce_change,
        }

    return metric


def uniqueness_metric(
    *,
    n: int = 12,
    l: int = 3,
    instances: int = 5,
    challenges: int = 20,
    seed: int = 0,
):
    """Canned metric: inter-class HD of a small PPUF population."""

    def metric(tech: Technology) -> Dict[str, float]:
        from repro.ppuf import Ppuf

        rng = np.random.default_rng(seed)
        ppufs = [
            Ppuf.create(n, l, rng, tech=tech, conditions=NOMINAL_CONDITIONS)
            for _ in range(instances)
        ]
        space = ppufs[0].challenge_space()
        challenge_list = [space.random(rng) for _ in range(challenges)]
        responses = np.stack(
            [ppuf.response_bits(challenge_list) for ppuf in ppufs]
        )
        summary = inter_class_hd(responses)
        return {"inter_class_hd": summary.mean}

    return metric
