"""Standard PUF quality metrics (Table 1, Fig. 9).

Conventions follow Maiti, Gunreddy & Schaumont's systematic evaluation
method (the paper's ref [27]):

* **inter-class HD** — normalised Hamming distance between the response
  words of *different* PPUF instances to the same challenges (ideal 0.5);
* **intra-class HD** — distance between one instance's nominal responses
  and its responses under environmental stress (ideal 0);
* **uniformity** — fraction of 1s in one instance's response word
  (ideal 0.5), summarised across instances;
* **randomness** — per-challenge fraction of 1s across instances, i.e.
  bit-aliasing (ideal 0.5).

All functions consume a *response matrix* of shape ``(instances,
challenges)`` with 0/1 entries, so the (expensive) PPUF evaluations happen
once in the caller and every metric is pure array arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class MetricSummary:
    """Mean/std summary of a metric's sample distribution."""

    name: str
    mean: float
    std: float
    samples: np.ndarray

    @classmethod
    def from_samples(cls, name: str, samples) -> "MetricSummary":
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise ReproError(f"metric {name!r} has no samples")
        return cls(
            name=name,
            mean=float(samples.mean()),
            std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
            samples=samples,
        )


def _check_matrix(responses: np.ndarray) -> np.ndarray:
    responses = np.asarray(responses)
    if responses.ndim != 2:
        raise ReproError(
            f"expected a (instances, challenges) matrix, got shape {responses.shape}"
        )
    if not np.all((responses == 0) | (responses == 1)):
        raise ReproError("responses must be 0/1")
    return responses.astype(np.float64)


def inter_class_hd(responses: np.ndarray) -> MetricSummary:
    """Pairwise normalised HD between instances (one sample per pair)."""
    responses = _check_matrix(responses)
    if responses.shape[0] < 2:
        raise ReproError("inter-class HD needs at least 2 instances")
    samples = [
        float(np.mean(responses[i] != responses[j]))
        for i, j in combinations(range(responses.shape[0]), 2)
    ]
    return MetricSummary.from_samples("inter_class_hd", samples)


def intra_class_hd(reference: np.ndarray, stressed: np.ndarray) -> MetricSummary:
    """Normalised HD between nominal and stressed responses.

    Parameters
    ----------
    reference:
        (instances, challenges) nominal responses.
    stressed:
        (corners, instances, challenges) responses under environmental
        stress; one HD sample per (corner, instance).
    """
    reference = _check_matrix(reference)
    stressed = np.asarray(stressed)
    if stressed.ndim != 3 or stressed.shape[1:] != reference.shape:
        raise ReproError(
            "stressed must have shape (corners,) + reference.shape; got "
            f"{stressed.shape} vs {reference.shape}"
        )
    samples = [
        float(np.mean(stressed[c, i] != reference[i]))
        for c in range(stressed.shape[0])
        for i in range(reference.shape[0])
    ]
    return MetricSummary.from_samples("intra_class_hd", samples)


def uniformity(responses: np.ndarray) -> MetricSummary:
    """Fraction of 1s per instance."""
    responses = _check_matrix(responses)
    return MetricSummary.from_samples("uniformity", responses.mean(axis=1))


def randomness(responses: np.ndarray) -> MetricSummary:
    """Per-challenge fraction of 1s across instances (bit aliasing)."""
    responses = _check_matrix(responses)
    if responses.shape[0] < 2:
        raise ReproError("randomness needs at least 2 instances")
    return MetricSummary.from_samples("randomness", responses.mean(axis=0))


def flip_probability(
    ppuf,
    distance: int,
    rng: np.random.Generator,
    *,
    trials: int = 100,
    engine: str = "maxflow",
) -> float:
    """Probability that flipping ``distance`` input bits flips the output.

    The Fig. 9 primitive: sample a random challenge, flip a random set of
    ``distance`` positions of its *full input word* — the type-A terminal
    fields plus the l² type-B control bits, i.e. everything the paper's
    "input vector" carries — and compare responses.
    """
    from repro.ppuf.challenge import Challenge

    word_length = (
        2 * Challenge.terminal_field_width(ppuf.n) + ppuf.crossbar.num_control_bits
    )
    if distance < 0 or distance > word_length:
        raise ReproError(f"distance must be in [0, {word_length}]")
    if trials < 1:
        raise ReproError(f"trials must be >= 1, got {trials}")
    space = ppuf.challenge_space()
    flips = 0
    for _ in range(trials):
        challenge = space.random(rng)
        word = challenge.input_word(ppuf.n)
        positions = rng.choice(word_length, size=distance, replace=False)
        word[positions] ^= 1
        flipped = Challenge.from_input_word(word, ppuf.n)
        if ppuf.response(challenge, engine=engine) != ppuf.response(flipped, engine=engine):
            flips += 1
    return flips / trials
