"""Response-entropy estimation.

The CRP-space bound of Section 4.2 counts *challenges*; whether responses
actually carry entropy is an empirical question answered from a response
matrix (instances × challenges):

* **per-challenge min-entropy** — ``-log2(max(p1, 1-p1))`` with ``p1`` the
  fraction of instances answering 1: how hard is the *most likely* answer
  to guess for a fresh device?
* **average min-entropy** of a response bit across the challenge set;
* **pairwise-bit correlation** — large |correlation| between challenge
  columns means the effective key space is smaller than the bit count.

These are standard PUF-corpus statistics (the natural follow-up to the
paper's Table 1) with small-sample bias noted in the docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class EntropySummary:
    """Entropy statistics of a response matrix.

    Attributes
    ----------
    per_challenge_min_entropy:
        (challenges,) min-entropy in bits of each response bit.
    average_min_entropy:
        Mean of the above [bits/bit]; 1.0 is ideal.
    max_abs_correlation:
        Largest |Pearson correlation| between any two challenge columns
        (computed over instances); near 0 is ideal.
    """

    per_challenge_min_entropy: np.ndarray
    average_min_entropy: float
    max_abs_correlation: float


def _check_matrix(responses) -> np.ndarray:
    responses = np.asarray(responses)
    if responses.ndim != 2 or responses.shape[0] < 2:
        raise ReproError(
            "need a (instances >= 2, challenges) response matrix, got "
            f"shape {responses.shape}"
        )
    if not np.all((responses == 0) | (responses == 1)):
        raise ReproError("responses must be 0/1")
    return responses.astype(np.float64)


def min_entropy_per_bit(responses) -> np.ndarray:
    """Per-challenge min-entropy [bits] from the instance population.

    Small-sample note: with K instances the estimate saturates at
    ``log2(K)``; treat values near that ceiling as "no bias detected".
    """
    responses = _check_matrix(responses)
    p_one = responses.mean(axis=0)
    p_max = np.maximum(p_one, 1.0 - p_one)
    # Guard exact-0 log for constant columns.
    return -np.log2(np.clip(p_max, 1e-12, 1.0))


def response_entropy(responses) -> EntropySummary:
    """Full entropy summary of a response matrix."""
    responses = _check_matrix(responses)
    per_bit = min_entropy_per_bit(responses)

    max_correlation = 0.0
    if responses.shape[1] >= 2:
        # Columns with zero variance carry no correlation information.
        stds = responses.std(axis=0)
        varying = responses[:, stds > 0]
        if varying.shape[1] >= 2:
            correlation = np.corrcoef(varying, rowvar=False)
            off_diagonal = correlation[~np.eye(correlation.shape[0], dtype=bool)]
            max_correlation = float(np.max(np.abs(off_diagonal)))
    return EntropySummary(
        per_challenge_min_entropy=per_bit,
        average_min_entropy=float(per_bit.mean()),
        max_abs_correlation=max_correlation,
    )
